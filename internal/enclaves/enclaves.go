// Package enclaves contains the SRV64 enclave programs the examples,
// integration tests and benchmarks load: a quickstart adder, an
// AEX-resumable counter, the local-attestation sender/receiver pair
// (Fig 6), the signing enclave and attested client of the remote
// attestation protocol (Fig 7), and the side-channel victim of the
// isolation experiments (E9).
//
// All programs share one virtual layout inside a 2 MiB evrange, so a
// single leaf page table serves the private range. The shared buffer
// lives at a fixed address outside evrange; under Sanctum it resolves
// through the OS page tables, under Keystone through a MapShared
// window — the programs are identical either way, which is the paper's
// portability claim (§VII) made concrete.
package enclaves

import (
	"fmt"

	"sanctorum/internal/asm"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// Layout fixes the virtual addresses every program uses.
type Layout struct {
	EvBase   uint64 // enclave virtual range base
	EvMask   uint64 // enclave virtual range mask
	CodeVA   uint64 // program text (R|X), up to 8 pages
	DataVA   uint64 // private data page (R|W)
	StackVA  uint64 // private stack page (R|W); SP starts at its top
	ArrayVA  uint64 // probe-array page for the side-channel victim
	SharedVA uint64 // OS shared buffer, outside evrange
}

// DefaultLayout returns the standard layout used throughout the
// repository.
func DefaultLayout() Layout {
	base := uint64(0x4000000000)
	return Layout{
		EvBase:   base,
		EvMask:   ^uint64(1<<21 - 1), // 2 MiB evrange
		CodeVA:   base,
		DataVA:   base + 0x10000,
		StackVA:  base + 0x11000,
		ArrayVA:  base + 0x12000,
		SharedVA: 0x50000000,
	}
}

// SP returns the initial stack pointer (top of the stack page).
func (l Layout) SP() uint64 { return l.StackVA + mem.PageSize }

// Registers the programs reserve for their own state (outside the
// a0..a7 ECALL window and the assembler temp x31).
const (
	rShared = 20 // shared buffer base
	rData   = 21 // private data base
	rTmp1   = 22
	rTmp2   = 23
	rTmp3   = 24
	rTmp4   = 25
	rAcc    = 26
	rIdx    = 27
)

// Shared-buffer slots (offsets into SharedVA) used by the protocol
// programs; the OS and the verifier use the same constants.
const (
	ShInput   = 0   // generic input word (adder n, phase selectors)
	ShOutput  = 8   // generic output word
	ShPeerEID = 16  // peer enclave ID for mailbox protocols
	ShCounter = 24  // live counter for the AEX demo
	ShNonce   = 32  // 32-byte verifier nonce
	ShShare   = 64  // 32-byte enclave key-agreement share (out)
	ShSig     = 96  // 64-byte attestation signature (out)
	ShPeerKA  = 160 // 32-byte remote verifier share (in)
	ShMACOut  = 192 // 32-byte session MAC (out)
)

// Private data-page offsets.
const (
	dExpected = 0   // 32-byte expected peer measurement (receiver)
	dMailBuf  = 64  // 160-byte get_mail output: measurement ‖ message
	dMsg      = 256 // 128-byte outgoing mailbox message
	dKAPriv   = 384 // 32-byte private scalar
	dKAShare  = 416 // 32-byte derived share
	dPeerKA   = 448 // 32-byte peer share copied from shared memory
	dSessKey  = 480 // 32-byte session key
	dMACMsg   = 512 // channel message to authenticate
	dMACOut   = 544 // 32-byte MAC
	dSignBuf  = 576 // signing-enclave staging: payload then signature
)

// SessionPlaintext is the message the attested client authenticates
// under the session key in the Fig 7 example (16 bytes, fixed).
var SessionPlaintext = []byte("enclave-channel!")

func ecall(p *asm.Program, call api.Call) {
	p.Li(isa.RegA7, int32(call))
	p.Ecall()
}

// exit emits exit_enclave(status register a0 already set).
func exitCall(p *asm.Program) { ecall(p, api.CallExitEnclave) }

// memcpyLoop emits a byte-copy of n bytes from the address in srcReg to
// the address in dstReg, clobbering rTmp3/rTmp4 and rIdx.
func memcpyLoop(p *asm.Program, label string, dstReg, srcReg uint8, n int32) {
	p.Li(rIdx, 0)
	p.Li(rTmp3, n)
	p.Label(label)
	p.Branch(isa.OpBEQ, rIdx, rTmp3, label+"_done")
	p.I(isa.OpADD, rTmp4, srcReg, rIdx, 0)
	p.I(isa.OpLBU, rTmp4, rTmp4, 0, 0)
	p.I(isa.OpADD, rAcc, dstReg, rIdx, 0)
	p.I(isa.OpSB, 0, rAcc, rTmp4, 0)
	p.I(isa.OpADDI, rIdx, rIdx, 0, 1)
	p.J(label)
	p.Label(label + "_done")
}

// Spec assembles a program and wraps it in an enclave spec: code pages,
// a data page (with optional initial content), a stack page, and the
// probe-array page. regions and shared come from the caller (they are
// machine-dependent).
func Spec(l Layout, prog *asm.Program, dataInit []byte, regions []int, shared []os.SharedMapping) (*os.EnclaveSpec, error) {
	bin, err := prog.Assemble(l.CodeVA)
	if err != nil {
		return nil, err
	}
	if len(bin) > 8*mem.PageSize {
		return nil, fmt.Errorf("enclaves: program too large (%d bytes)", len(bin))
	}
	spec := &os.EnclaveSpec{
		EvBase:  l.EvBase,
		EvMask:  l.EvMask,
		Regions: regions,
		Shared:  shared,
	}
	for off := 0; off < len(bin); off += mem.PageSize {
		end := off + mem.PageSize
		if end > len(bin) {
			end = len(bin)
		}
		spec.Pages = append(spec.Pages, os.EnclavePage{
			VA: l.CodeVA + uint64(off), Perms: pt.R | pt.X, Data: bin[off:end],
		})
	}
	spec.Pages = append(spec.Pages,
		os.EnclavePage{VA: l.DataVA, Perms: pt.R | pt.W, Data: dataInit},
		os.EnclavePage{VA: l.StackVA, Perms: pt.R | pt.W},
		os.EnclavePage{VA: l.ArrayVA, Perms: pt.R | pt.W},
	)
	spec.Threads = []os.ThreadSpec{{EntryVA: l.CodeVA, StackVA: l.SP()}}
	return spec, nil
}

// Adder is the quickstart program: read n from the shared buffer,
// compute 1+2+…+n, write the sum back, exit with status 0x42.
func Adder(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rShared, l.SharedVA)
	p.I(isa.OpLD, rTmp1, rShared, 0, ShInput) // n
	p.Li(rAcc, 0)
	p.Li(rIdx, 1)
	p.Label("loop")
	p.Branch(isa.OpBLTU, rTmp1, rIdx, "done") // n < i ?
	p.I(isa.OpADD, rAcc, rAcc, rIdx, 0)
	p.I(isa.OpADDI, rIdx, rIdx, 0, 1)
	p.J("loop")
	p.Label("done")
	p.I(isa.OpSD, 0, rShared, rAcc, ShOutput)
	p.Li(isa.RegA0, 0x42)
	exitCall(p)
	return p
}

// StatefulAdder is the snapshot/clone workload: it keeps a running
// total in its private data page (offset 0), adds the shared-buffer
// input to it, persists the new total back to the data page — the
// write that triggers a copy-on-write fault when this enclave is a
// clone aliasing a frozen template page — and publishes the total to
// the shared output. Two clones of one template therefore start from
// the same measured initial total and diverge privately.
func StatefulAdder(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rShared, l.SharedVA)
	p.Li64(rData, l.DataVA)
	p.I(isa.OpLD, rTmp1, rShared, 0, ShInput) // n
	p.I(isa.OpLD, rAcc, rData, 0, 0)          // running total
	p.I(isa.OpADD, rAcc, rAcc, rTmp1, 0)
	p.I(isa.OpSD, 0, rData, rAcc, 0) // private write: COW copies on a clone
	p.I(isa.OpSD, 0, rShared, rAcc, ShOutput)
	p.Li(isa.RegA0, 0x42)
	exitCall(p)
	return p
}

// Counter is the AEX demo: on a fresh entry it counts upward forever,
// publishing the count to the shared buffer; when re-entered after an
// asynchronous exit (a0 != 0 at entry) it resumes the interrupted loop
// via the monitor, preserving its registers exactly.
func Counter(l Layout) *asm.Program {
	p := asm.New()
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "fresh")
	ecall(p, api.CallResumeAEX) // does not return on success
	p.Label("fresh")
	p.Li64(rShared, l.SharedVA)
	p.Li(rAcc, 0)
	p.Label("loop")
	p.I(isa.OpADDI, rAcc, rAcc, 0, 1)
	p.I(isa.OpSD, 0, rShared, rAcc, ShCounter)
	p.J("loop")
	return p
}

// MailSender is E1 of the local attestation example (Fig 6): it sends
// the 128-byte message in its private data page (offset dMsg) to the
// peer enclave named in the shared buffer.
func MailSender(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rShared, l.SharedVA)
	p.Li64(rData, l.DataVA)
	p.I(isa.OpLD, isa.RegA0, rShared, 0, ShPeerEID)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dMsg)
	ecall(p, api.CallSendMail)
	// a0 already holds the monitor status; report it to the OS.
	exitCall(p)
	return p
}

// MailReceiver is E2 of the local attestation example (Fig 6). Phase 0
// (shared ShInput = 0): arm mailbox 0 for the peer in ShPeerEID.
// Phase 1: drain the mailbox, compare the monitor-stamped sender
// measurement with the expected one baked into its data page, and
// publish the verdict (1 = authentic, 2 = mismatch) to ShOutput.
func MailReceiver(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rShared, l.SharedVA)
	p.Li64(rData, l.DataVA)
	p.I(isa.OpLD, rTmp1, rShared, 0, ShInput)
	p.Branch(isa.OpBNE, rTmp1, isa.RegZero, "phase1")
	// Phase 0: accept_mail(0, peer).
	p.Li(isa.RegA0, 0)
	p.I(isa.OpLD, isa.RegA1, rShared, 0, ShPeerEID)
	ecall(p, api.CallAcceptMail)
	exitCall(p)

	p.Label("phase1")
	p.Li(isa.RegA0, 0)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dMailBuf)
	ecall(p, api.CallGetMail)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	// Compare buf[0:32] (sender measurement) with expected at dExpected.
	p.Li(rIdx, 0)
	p.Li(rTmp1, 32)
	p.Label("cmp")
	p.Branch(isa.OpBEQ, rIdx, rTmp1, "ok")
	p.I(isa.OpADDI, rTmp2, rData, 0, dMailBuf)
	p.I(isa.OpADD, rTmp2, rTmp2, rIdx, 0)
	p.I(isa.OpLBU, rTmp2, rTmp2, 0, 0)
	p.I(isa.OpADDI, rTmp3, rData, 0, dExpected)
	p.I(isa.OpADD, rTmp3, rTmp3, rIdx, 0)
	p.I(isa.OpLBU, rTmp3, rTmp3, 0, 0)
	p.Branch(isa.OpBNE, rTmp2, rTmp3, "fail")
	p.I(isa.OpADDI, rIdx, rIdx, 0, 1)
	p.J("cmp")
	p.Label("ok")
	p.Li(rTmp4, 1)
	p.I(isa.OpSD, 0, rShared, rTmp4, ShOutput)
	p.Li(isa.RegA0, 0)
	exitCall(p)
	p.Label("fail")
	p.Li(rTmp4, 2)
	p.I(isa.OpSD, 0, rShared, rTmp4, ShOutput)
	p.Li(isa.RegA0, 1)
	exitCall(p)
	return p
}

// SigningEnclave is ES of Fig 7. Phase 0: arm mailbox 0 for the client
// in ShPeerEID. Phase 1: drain the mailbox — the buffer then holds
// (client measurement ‖ nonce ‖ KA share) contiguously, exactly the
// evidence payload — have the monitor sign it, and mail the signature
// back to the client.
func SigningEnclave(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rShared, l.SharedVA)
	p.Li64(rData, l.DataVA)
	p.I(isa.OpLD, rTmp1, rShared, 0, ShInput)
	p.Branch(isa.OpBNE, rTmp1, isa.RegZero, "phase1")
	p.Li(isa.RegA0, 0)
	p.I(isa.OpLD, isa.RegA1, rShared, 0, ShPeerEID)
	ecall(p, api.CallAcceptMail)
	exitCall(p)

	p.Label("phase1")
	// get_mail(0, dMailBuf): buf = senderMeas(32) ‖ msg(128); the
	// client's msg is nonce(32) ‖ share(32) ‖ zeros, so buf[0:96] is
	// the attestation payload with no copying.
	p.Li(isa.RegA0, 0)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dMailBuf)
	ecall(p, api.CallGetMail)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	// attest_sign(dMailBuf, 96, dSignBuf).
	p.I(isa.OpADDI, isa.RegA0, rData, 0, dMailBuf)
	p.Li(isa.RegA1, 96)
	p.I(isa.OpADDI, isa.RegA2, rData, 0, dSignBuf)
	ecall(p, api.CallAttestSign)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	// send_mail(client, dSignBuf): 64-byte signature, zero padded.
	p.I(isa.OpLD, isa.RegA0, rShared, 0, ShPeerEID)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dSignBuf)
	ecall(p, api.CallSendMail)
	exitCall(p)
	p.Label("fail")
	exitCall(p)
	return p
}

// AttestedClient is E1 of Fig 7. Phase 0: draw a private scalar from
// the trusted entropy source, derive its key-agreement share, publish
// the share (public) to the shared buffer, copy the verifier nonce
// (public) into the outgoing message, arm mailbox 0 for the signing
// enclave, and mail (nonce ‖ share) to it. Phase 1: receive the
// signature, publish it, then derive the session key from the
// verifier's share and authenticate SessionPlaintext under it.
func AttestedClient(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rShared, l.SharedVA)
	p.Li64(rData, l.DataVA)
	p.I(isa.OpLD, rTmp1, rShared, 0, ShInput)
	p.Branch(isa.OpBNE, rTmp1, isa.RegZero, "phase1")

	// --- Phase 0 ---
	// Private scalar: 4 × get_random into dKAPriv.
	for i := int32(0); i < 4; i++ {
		ecall(p, api.CallGetRandom)
		p.I(isa.OpSD, 0, rData, isa.RegA1, dKAPriv+8*i)
	}
	// Derive the public share.
	p.I(isa.OpADDI, isa.RegA0, rData, 0, dKAPriv)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dKAShare)
	ecall(p, api.CallKADerive)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	// Publish the share (it is public) for transport to the verifier.
	p.I(isa.OpADDI, rTmp1, rShared, 0, ShShare)
	p.I(isa.OpADDI, rTmp2, rData, 0, dKAShare)
	memcpyLoop(p, "cpShare", rTmp1, rTmp2, 32)
	// Outgoing message: nonce(32) ‖ share(32) at dMsg.
	p.I(isa.OpADDI, rTmp1, rData, 0, dMsg)
	p.I(isa.OpADDI, rTmp2, rShared, 0, ShNonce)
	memcpyLoop(p, "cpNonce", rTmp1, rTmp2, 32)
	p.I(isa.OpADDI, rTmp1, rData, 0, dMsg+32)
	p.I(isa.OpADDI, rTmp2, rData, 0, dKAShare)
	memcpyLoop(p, "cpShare2", rTmp1, rTmp2, 32)
	// Arm mailbox 0 for the signing enclave's reply.
	p.Li(isa.RegA0, 0)
	p.I(isa.OpLD, isa.RegA1, rShared, 0, ShPeerEID)
	ecall(p, api.CallAcceptMail)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	// Mail the request to the signing enclave.
	p.I(isa.OpLD, isa.RegA0, rShared, 0, ShPeerEID)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dMsg)
	ecall(p, api.CallSendMail)
	exitCall(p)

	// --- Phase 1 ---
	p.Label("phase1")
	p.Li(isa.RegA0, 0)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dMailBuf)
	ecall(p, api.CallGetMail)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	// Publish the signature: mailbox message starts at dMailBuf+32.
	p.I(isa.OpADDI, rTmp1, rShared, 0, ShSig)
	p.I(isa.OpADDI, rTmp2, rData, 0, dMailBuf+32)
	memcpyLoop(p, "cpSig", rTmp1, rTmp2, 64)
	// Copy the verifier's share into private memory, derive the
	// session key, and MAC the channel message.
	p.I(isa.OpADDI, rTmp1, rData, 0, dPeerKA)
	p.I(isa.OpADDI, rTmp2, rShared, 0, ShPeerKA)
	memcpyLoop(p, "cpPeer", rTmp1, rTmp2, 32)
	p.I(isa.OpADDI, isa.RegA0, rData, 0, dKAPriv)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dPeerKA)
	p.I(isa.OpADDI, isa.RegA2, rData, 0, dSessKey)
	ecall(p, api.CallKACombine)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	p.I(isa.OpADDI, isa.RegA0, rData, 0, dSessKey)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dMACMsg)
	p.Li(isa.RegA2, int32(len(SessionPlaintext)))
	p.I(isa.OpADDI, isa.RegA3, rData, 0, dMACOut)
	ecall(p, api.CallMAC)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "fail")
	p.I(isa.OpADDI, rTmp1, rShared, 0, ShMACOut)
	p.I(isa.OpADDI, rTmp2, rData, 0, dMACOut)
	memcpyLoop(p, "cpMAC", rTmp1, rTmp2, 32)
	p.Li(isa.RegA0, 0)
	exitCall(p)
	p.Label("fail")
	exitCall(p)
	return p
}

// ClientDataInit returns the initial data page for AttestedClient: the
// channel plaintext is baked at dMACMsg so the MAC covers private,
// measured content.
func ClientDataInit() []byte {
	data := make([]byte, dMACMsg+len(SessionPlaintext))
	copy(data[dMACMsg:], SessionPlaintext)
	return data
}

// ReceiverDataInit returns the initial data page for MailReceiver with
// the expected sender measurement baked in.
func ReceiverDataInit(expected [32]byte) []byte {
	data := make([]byte, 64)
	copy(data[dExpected:], expected[:])
	return data
}

// SenderDataInit returns the initial data page for MailSender with the
// outgoing message baked in.
func SenderDataInit(msg []byte) []byte {
	data := make([]byte, dMsg+api.MailboxSize)
	copy(data[dMsg:], msg)
	return data
}

// Victim is the side-channel victim (E9): it makes a single load whose
// cache line depends on the secret byte baked into its data page, the
// canonical secret-dependent memory access a cache-timing attacker
// tries to observe.
func Victim(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rData, l.DataVA)
	p.I(isa.OpLBU, rTmp1, rData, 0, 0)  // secret line index 0..7
	p.I(isa.OpSLLI, rTmp1, rTmp1, 0, 6) // ×64 bytes
	p.Li64(rTmp2, l.ArrayVA)
	p.I(isa.OpADD, rTmp2, rTmp2, rTmp1, 0)
	p.I(isa.OpLD, rTmp3, rTmp2, 0, 0) // the secret-dependent access
	p.Li(isa.RegA0, 0)
	exitCall(p)
	return p
}

// VictimDataInit bakes the secret line index into the victim's data
// page.
func VictimDataInit(secret byte) []byte { return []byte{secret} }

// EcallLoop issues monitor calls (get_random) in a tight loop forever —
// the workload for measuring the trap round-trip cost (E1).
func EcallLoop(l Layout) *asm.Program {
	p := asm.New()
	p.Label("loop")
	ecall(p, api.CallGetRandom)
	p.J("loop")
	return p
}

// ExitImmediately performs a voluntary exit as its first action — the
// workload for measuring enter/exit cost (E4).
func ExitImmediately(l Layout) *asm.Program {
	p := asm.New()
	p.Li(isa.RegA0, 0)
	exitCall(p)
	return p
}

// FaultingProgram dereferences an unmapped address inside evrange: the
// monitor either delivers the fault to a registered handler or forces
// an AEX (Fig 1's fault path).
func FaultingProgram(l Layout) *asm.Program {
	p := asm.New()
	p.Li64(rTmp1, l.EvBase+0x100000) // inside evrange, never mapped
	p.I(isa.OpLD, rTmp2, rTmp1, 0, 0)
	p.Li(isa.RegA0, 0)
	exitCall(p)
	return p
}

// FaultHandlerProgram registers a fault handler, then touches an
// unmapped address; the handler publishes the fault cause and address
// to the shared buffer and exits cleanly — the enclave-managed paging
// path of Fig 1.
func FaultHandlerProgram(l Layout) *asm.Program {
	p := asm.New()
	// The handler sits at the fixed offset CodeVA+8 so its 64-bit
	// address can be materialized without label arithmetic.
	p.J("main")
	p.Label("handler") // at l.CodeVA + 8
	// a0 = cause, a1 = faulting VA (set by the monitor).
	p.Li64(rShared, l.SharedVA)
	p.I(isa.OpSD, 0, rShared, isa.RegA0, ShOutput)
	p.I(isa.OpSD, 0, rShared, isa.RegA1, ShOutput+8)
	p.Li(isa.RegA0, 7)
	exitCall(p)

	p.Label("main")
	p.Li64(isa.RegA0, l.CodeVA+8)
	p.Li64(isa.RegA1, l.SP()-256)
	ecall(p, api.CallSetFaultHandler)
	// Fault.
	p.Li64(rTmp1, l.EvBase+0x100000)
	p.I(isa.OpLD, rTmp2, rTmp1, 0, 0)
	// Unreachable if the handler exits.
	p.Li(isa.RegA0, 99)
	exitCall(p)
	return p
}

// WorkerExitStatus is the exit_enclave status Worker reports on
// completion.
const WorkerExitStatus = 0x42

// Worker is the scheduler load kernel: a preemption-tolerant compute
// loop for the multi-hart timesharing harness. On a fresh entry it
// reads an iteration count n from the shared buffer (ShInput), runs a
// register-only accumulate/mix loop — so concurrent threads of one
// enclave touch no common memory while computing — then publishes the
// accumulator to a per-thread output slot and exits with
// WorkerExitStatus. Re-entered after an AEX (a0 != 0) it resumes the
// interrupted loop through the monitor, so any number of preemptions
// leave the result unchanged.
//
// The output slot is derived from the thread's own stack page:
// ShOutput + 8*(((SP-1) >> 12) & 7). With SpecN's stack placement the
// slots of up to four threads are distinct, so no two harts ever store
// to the same shared word (which also keeps the host race detector
// quiet for what would otherwise be a benign guest-level race).
func Worker(l Layout) *asm.Program {
	p := asm.New()
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "fresh")
	ecall(p, api.CallResumeAEX) // does not return on success
	p.Label("fresh")
	p.Li64(rShared, l.SharedVA)
	p.I(isa.OpLD, rTmp1, rShared, 0, ShInput) // n
	p.Li(rAcc, 0)
	p.Li(rIdx, 0)
	p.Label("loop")
	p.Branch(isa.OpBEQ, rIdx, rTmp1, "done")
	p.I(isa.OpADD, rAcc, rAcc, rIdx, 0)
	p.I(isa.OpXORI, rAcc, rAcc, 0, 0x55)
	p.I(isa.OpADDI, rIdx, rIdx, 0, 1)
	p.J("loop")
	p.Label("done")
	// slot address = shared + ShOutput + 8*(((SP-1)>>12) & 7)
	p.I(isa.OpADDI, rTmp2, isa.RegSP, 0, -1)
	p.I(isa.OpSRLI, rTmp2, rTmp2, 0, 12)
	p.I(isa.OpANDI, rTmp2, rTmp2, 0, 7)
	p.I(isa.OpSLLI, rTmp2, rTmp2, 0, 3)
	p.I(isa.OpADD, rTmp2, rShared, rTmp2, 0)
	p.I(isa.OpSD, 0, rTmp2, rAcc, ShOutput)
	p.Li(isa.RegA0, WorkerExitStatus)
	exitCall(p)
	return p
}

// --- Ring-serving workers (monitor calls 0x40–0x45, DESIGN.md §9) ---
//
// A ring server is a resumable request loop over the monitor's mailbox
// rings: park on the request ring until messages arrive, recv a batch,
// transform each payload into a response slot, send the batch to the
// response ring, park again. The programs communicate exclusively
// through rings — no shared window — so one measured template serves
// every clone: each worker discovers its own (per-clone) ring ids
// through get_field(FieldEnclaveRings), since ring ids are SM metadata
// pages a measured image cannot embed.

// RingServeBatch is the most messages a ring server drains per recv.
const RingServeBatch = 8

// Ring-server private data-page offsets.
const (
	dRingDir  = 0    // 32 bytes: FieldEnclaveRings directory (2 entries)
	dRingRecv = 64   // RingServeBatch × api.RingRecordSize recv buffer
	dRingSend = 1024 // RingServeBatch × api.RingMsgSize send buffer
	dRingKV   = 2048 // 128 × 8-byte value slots (KV server state)
)

// ringServer emits the shared serve loop. transform emits the
// per-record body with rTmp2 holding rData+104·idx (payload at
// [rTmp2 + dRingRecv + api.RingStampSize]) and rTmp3 holding
// rData+64·idx (response at [rTmp3 + dRingSend]); it may clobber
// rTmp4 and a3..a6.
func ringServer(l Layout, transform func(p *asm.Program)) *asm.Program {
	p := asm.New()
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "fresh")
	ecall(p, api.CallResumeAEX) // does not return on success
	p.Label("fresh")
	p.Li64(rData, l.DataVA)
	// Discover this worker's rings: get_field(enclave_rings) writes the
	// id ‖ role directory; the consumer entry is the request ring, the
	// producer entry the response ring.
	p.Li(isa.RegA0, int32(api.FieldEnclaveRings))
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dRingDir)
	p.Li(isa.RegA2, 32)
	ecall(p, api.CallGetField)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "die")
	p.I(isa.OpLD, rAcc, rData, 0, dRingDir)          // entry 0 id
	p.I(isa.OpLD, rShared, rData, 0, dRingDir+16)    // entry 1 id
	p.I(isa.OpLD, rTmp4, rData, 0, dRingDir+8)       // entry 0 role
	p.Branch(isa.OpBEQ, rTmp4, isa.RegZero, "serve") // 0 = consumer: req first
	p.I(isa.OpADD, rTmp4, rAcc, isa.RegZero, 0)      // swap: rAcc=req, rShared=resp
	p.I(isa.OpADD, rAcc, rShared, isa.RegZero, 0)
	p.I(isa.OpADD, rShared, rTmp4, isa.RegZero, 0)

	p.Label("serve")
	// thread_park(req ring): blocks until messages arrive. ErrRetry is
	// transient lock contention — the §V-A discipline says re-issue the
	// park; any other failure (a destroyed ring, a sibling already
	// parked) is the shutdown signal.
	p.I(isa.OpADD, isa.RegA0, rAcc, isa.RegZero, 0)
	ecall(p, api.CallRingPark)
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "drain")
	p.Li(rTmp4, int32(api.ErrRetry))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "serve")
	p.J("die")
	p.Label("drain")
	p.I(isa.OpADD, isa.RegA0, rAcc, isa.RegZero, 0)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dRingRecv)
	p.Li(isa.RegA2, RingServeBatch)
	ecall(p, api.CallRingRecv)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "serve") // drained by a sibling: park again
	p.I(isa.OpADD, rTmp1, isa.RegA1, isa.RegZero, 0)     // n records

	p.Li(rIdx, 0)
	p.Label("xform")
	p.Branch(isa.OpBEQ, rIdx, rTmp1, "reply")
	// rTmp2 = rData + 104·idx (record base), rTmp3 = rData + 64·idx.
	p.I(isa.OpSLLI, rTmp2, rIdx, 0, 3)
	p.I(isa.OpSLLI, rTmp3, rIdx, 0, 5)
	p.I(isa.OpADD, rTmp2, rTmp2, rTmp3, 0)
	p.I(isa.OpSLLI, rTmp3, rIdx, 0, 6)
	p.I(isa.OpADD, rTmp2, rTmp2, rTmp3, 0)
	p.I(isa.OpADD, rTmp2, rTmp2, rData, 0)
	p.I(isa.OpSLLI, rTmp3, rIdx, 0, 6)
	p.I(isa.OpADD, rTmp3, rTmp3, rData, 0)
	transform(p)
	p.I(isa.OpADDI, rIdx, rIdx, 0, 1)
	p.J("xform")

	p.Label("reply")
	// Send with the full ring-caller discipline: retry ErrRetry
	// (transient contention) and ErrInvalidState (response ring full —
	// backpressure; spinning is preemptible, the consumer will drain),
	// advance past partial transfers, and die on anything else (a
	// destroyed ring). rTmp2 = send cursor, rTmp3 = messages left.
	p.I(isa.OpADDI, rTmp2, rData, 0, dRingSend)
	p.I(isa.OpADD, rTmp3, rTmp1, isa.RegZero, 0)
	p.Label("send")
	p.Branch(isa.OpBEQ, rTmp3, isa.RegZero, "serve")
	p.I(isa.OpADD, isa.RegA0, rShared, isa.RegZero, 0)
	p.I(isa.OpADD, isa.RegA1, rTmp2, isa.RegZero, 0)
	p.I(isa.OpADD, isa.RegA2, rTmp3, isa.RegZero, 0)
	ecall(p, api.CallRingSend)
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "sent")
	p.Li(rTmp4, int32(api.ErrRetry))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "send")
	p.Li(rTmp4, int32(api.ErrInvalidState))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "send")
	p.J("die")
	p.Label("sent")
	p.I(isa.OpSLLI, rTmp4, isa.RegA1, 0, 6) // sent × RingMsgSize
	p.I(isa.OpADD, rTmp2, rTmp2, rTmp4, 0)
	p.I(isa.OpSUB, rTmp3, rTmp3, isa.RegA1, 0)
	p.J("send")

	p.Label("die")
	p.Li(isa.RegA0, WorkerExitStatus)
	exitCall(p)
	return p
}

// RingEchoServer answers each request with its payload echoed and the
// first word incremented — the minimal proof the message traversed the
// enclave rather than a host shortcut.
func RingEchoServer(l Layout) *asm.Program {
	const payload = dRingRecv + api.RingStampSize
	return ringServer(l, func(p *asm.Program) {
		p.I(isa.OpLD, rTmp4, rTmp2, 0, payload)
		p.I(isa.OpADDI, rTmp4, rTmp4, 0, 1)
		p.I(isa.OpSD, 0, rTmp3, rTmp4, dRingSend)
		for w := 1; w < 8; w++ {
			p.I(isa.OpLD, rTmp4, rTmp2, 0, int32(payload+8*w))
			p.I(isa.OpSD, 0, rTmp3, rTmp4, int32(dRingSend+8*w))
		}
	})
}

// RingEchoExpected computes the echo server's response for a request
// payload (zero-padded to api.RingMsgSize).
func RingEchoExpected(payload []byte) []byte {
	out := make([]byte, api.RingMsgSize)
	copy(out, payload)
	var w0 uint64
	for i := 0; i < 8; i++ {
		w0 |= uint64(out[i]) << (8 * uint(i))
	}
	w0++
	for i := 0; i < 8; i++ {
		out[i] = byte(w0 >> (8 * uint(i)))
	}
	return out
}

// Ring KV operation codes (request payload word 0).
const (
	RingOpPut = 1
	RingOpGet = 2
)

// RingKVRequest builds a KV request payload: op ‖ key ‖ value.
func RingKVRequest(op, key, value uint64) []byte {
	out := make([]byte, api.RingMsgSize)
	for i := 0; i < 8; i++ {
		out[i] = byte(op >> (8 * uint(i)))
		out[8+i] = byte(key >> (8 * uint(i)))
		out[16+i] = byte(value >> (8 * uint(i)))
	}
	return out
}

// RingKVServer is a stateful serving worker: requests are (op, key,
// value) triples; put stores value under key (128 slots, key mod 128)
// in the worker's private data page, get loads it. The response is
// value ‖ key ‖ zeros — for a put, the stored value; for a get, the
// current one (0 if never written). Worker state lives in private
// enclave memory: two clones of one template diverge through COW, each
// holding its own store.
func RingKVServer(l Layout) *asm.Program {
	const payload = dRingRecv + api.RingStampSize
	return ringServer(l, func(p *asm.Program) {
		p.I(isa.OpLD, isa.RegA3, rTmp2, 0, payload)   // op
		p.I(isa.OpLD, isa.RegA4, rTmp2, 0, payload+8) // key
		p.I(isa.OpANDI, isa.RegA5, isa.RegA4, 0, 127) // slot
		p.I(isa.OpSLLI, isa.RegA5, isa.RegA5, 0, 3)
		p.I(isa.OpADD, isa.RegA5, isa.RegA5, rData, 0)
		p.Li(isa.RegA6, RingOpPut)
		p.Branch(isa.OpBNE, isa.RegA3, isa.RegA6, "kvget")
		p.I(isa.OpLD, rTmp4, rTmp2, 0, payload+16) // value
		p.I(isa.OpSD, 0, isa.RegA5, rTmp4, dRingKV)
		p.J("kvout")
		p.Label("kvget")
		p.I(isa.OpLD, rTmp4, isa.RegA5, 0, dRingKV)
		p.Label("kvout")
		p.I(isa.OpSD, 0, rTmp3, rTmp4, dRingSend)       // value
		p.I(isa.OpSD, 0, rTmp3, isa.RegA4, dRingSend+8) // key
		for w := 2; w < 8; w++ {
			p.I(isa.OpSD, 0, rTmp3, isa.RegZero, int32(dRingSend+8*w))
		}
	})
}

// WorkerExpected computes the accumulator Worker publishes for n
// iterations — the Go-side replay the harness checks results against.
func WorkerExpected(n uint64) uint64 {
	var acc uint64
	for i := uint64(0); i < n; i++ {
		acc = (acc + i) ^ 0x55
	}
	return acc
}

// WorkerSlot returns the ShOutput-relative output slot offset of the
// thread whose initial stack pointer is sp.
func WorkerSlot(sp uint64) int {
	return int(((sp - 1) >> 12 & 7) * 8)
}

// SpecN is Spec for a program run by nThreads concurrent threads (at
// most 4, so Worker output slots stay distinct). Thread 0 keeps the
// layout's stack page; each further thread gets its own stack page two
// pages above the previous (skipping the probe-array page).
func SpecN(l Layout, prog *asm.Program, dataInit []byte, regions []int, shared []os.SharedMapping, nThreads int) (*os.EnclaveSpec, error) {
	if nThreads < 1 || nThreads > 4 {
		return nil, fmt.Errorf("enclaves: %d threads outside [1,4]", nThreads)
	}
	spec, err := Spec(l, prog, dataInit, regions, shared)
	if err != nil {
		return nil, err
	}
	for i := 1; i < nThreads; i++ {
		stackVA := l.StackVA + uint64(2*i)*mem.PageSize
		spec.Pages = append(spec.Pages, os.EnclavePage{VA: stackVA, Perms: pt.R | pt.W})
		spec.Threads = append(spec.Threads, os.ThreadSpec{
			EntryVA: l.CodeVA, StackVA: stackVA + mem.PageSize,
		})
	}
	return spec, nil
}
