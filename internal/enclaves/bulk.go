package enclaves

// Bulk-serving workers (monitor calls 0x50–0x54, DESIGN.md §14): ring
// servers whose request payloads are scatter-gather descriptors into a
// monitor-granted shared buffer, so the data plane moves multi-KB
// values while every message stays 64 bytes.
//
// A bulk worker boots like a ring worker — discover the per-clone ring
// ids through get_field — plus two bulk-specific steps the measured
// image cannot embed: it discovers its grant through
// get_field(enclave_grants), and it learns the *virtual address* to map
// the buffer at from a one-message setup handshake. The VA cannot be a
// measured constant because under Sanctum every enclave resolves
// non-evrange addresses through the one global OS page table, so each
// worker of a gateway must map its own buffer at a distinct VA; the
// gateway picks the addresses and sends each worker its own as the
// first (plain) message on the request ring. After bulk_map the worker
// enters the ordinary park/recv/transform/send loop, draining requests
// with bulk_recv (releasing their descriptor in-flight pins) and
// replying with plain ring sends — replies are application echoes that
// need not parse as descriptor lists.
//
// The template must be built with a shared window at l.SharedVA: the
// bulk VAs live in the same 2 MiB leaf, and bulk_map requires the leaf
// table to exist (it allocates nothing). Clones inherit the copied
// tables, then write their private PTEs.

import (
	"encoding/binary"

	"sanctorum/internal/asm"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// Bulk-server private data-page offsets (continuing the ring-server
// map: dRingKV ends at 3072).
const (
	dBulkDir = 3072 // 24 bytes: FieldEnclaveGrants directory (1 entry)
	dBulkVA  = 3096 // bulk window VA received in the setup message
)

// Additional registers the bulk servers reserve (x18/x19 and x28 —
// outside the a0..a7 ECALL window, the r* set above, and the assembler
// temp x31).
const (
	rTmp5   = 18
	rTmp6   = 19
	rStride = 28 // page stride (4096); ADDI immediates stop at ±2047
)

// BulkKVSlots is the number of value slots the bulk KV server keeps;
// each slot is one page, so values up to 4 KiB round-trip.
const BulkKVSlots = 8

// BulkKVSlotsVA returns the base VA of the KV slot pages (inside the
// evrange, clear of the code/data/stack/array pages and SpecN stacks).
func BulkKVSlotsVA(l Layout) uint64 { return l.EvBase + 0x20000 }

// bulkServer emits the shared bulk serve loop: ring discovery exactly
// as ringServer, then grant discovery, the setup-message handshake,
// bulk_map, and the park/recv/transform/send loop over
// bulk_recv/bulk_send. transform sees the ringServer contract (rTmp2 =
// record base, rTmp3 = rData+64·idx) plus the bulk window base at
// [rData+dBulkVA]; it may clobber rTmp4..rTmp6 and a3..a6.
func bulkServer(l Layout, transform func(p *asm.Program)) *asm.Program {
	p := asm.New()
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "fresh")
	ecall(p, api.CallResumeAEX) // does not return on success
	p.Label("fresh")
	p.Li64(rData, l.DataVA)
	p.Li(rStride, int32(mem.PageSize))
	// Discover this worker's rings: the consumer entry is the request
	// ring (rAcc), the producer entry the response ring (rShared).
	p.Li(isa.RegA0, int32(api.FieldEnclaveRings))
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dRingDir)
	p.Li(isa.RegA2, 32)
	ecall(p, api.CallGetField)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "die")
	p.I(isa.OpLD, rAcc, rData, 0, dRingDir)       // entry 0 id
	p.I(isa.OpLD, rShared, rData, 0, dRingDir+16) // entry 1 id
	p.I(isa.OpLD, rTmp4, rData, 0, dRingDir+8)    // entry 0 role
	p.Branch(isa.OpBEQ, rTmp4, isa.RegZero, "grant")
	p.I(isa.OpADD, rTmp4, rAcc, isa.RegZero, 0) // swap: rAcc=req, rShared=resp
	p.I(isa.OpADD, rAcc, rShared, isa.RegZero, 0)
	p.I(isa.OpADD, rShared, rTmp4, isa.RegZero, 0)

	// Discover the grant: id ‖ role ‖ byte size.
	p.Label("grant")
	p.Li(isa.RegA0, int32(api.FieldEnclaveGrants))
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dBulkDir)
	p.Li(isa.RegA2, 24)
	ecall(p, api.CallGetField)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "die")

	// Setup handshake: the first message on the request ring is plain
	// (not scatter-gather) and carries the bulk window VA in word 0.
	p.Label("setup_park")
	p.I(isa.OpADD, isa.RegA0, rAcc, isa.RegZero, 0)
	ecall(p, api.CallRingPark)
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "setup_recv")
	p.Li(rTmp4, int32(api.ErrRetry))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "setup_park")
	p.J("die")
	p.Label("setup_recv")
	p.I(isa.OpADD, isa.RegA0, rAcc, isa.RegZero, 0)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dRingRecv)
	p.Li(isa.RegA2, 1)
	ecall(p, api.CallRingRecv)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "setup_park")
	p.I(isa.OpLD, rTmp4, rData, 0, dRingRecv+api.RingStampSize)
	p.I(isa.OpSD, 0, rData, rTmp4, dBulkVA)

	// Accept the grant: bulk_map(id, va), retrying transient contention.
	p.Label("map")
	p.I(isa.OpLD, isa.RegA0, rData, 0, dBulkDir)
	p.I(isa.OpLD, isa.RegA1, rData, 0, dBulkVA)
	ecall(p, api.CallBulkMap)
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "serve")
	p.Li(rTmp4, int32(api.ErrRetry))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "map")
	p.J("die")

	p.Label("serve")
	// thread_park(req ring): blocks until messages arrive; ErrRetry is
	// transient (§V-A), anything else the shutdown signal.
	p.I(isa.OpADD, isa.RegA0, rAcc, isa.RegZero, 0)
	ecall(p, api.CallRingPark)
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "drain")
	p.Li(rTmp4, int32(api.ErrRetry))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "serve")
	p.J("die")
	p.Label("drain")
	// bulk_recv drains only this grant's descriptor run; ErrInvalidValue
	// means the head message is a stray plain one (or a sibling drained
	// the run) — park again rather than die.
	p.I(isa.OpADD, isa.RegA0, rAcc, isa.RegZero, 0)
	p.I(isa.OpADDI, isa.RegA1, rData, 0, dRingRecv)
	p.Li(isa.RegA2, RingServeBatch)
	p.I(isa.OpLD, isa.RegA3, rData, 0, dBulkDir)
	ecall(p, api.CallBulkRecv)
	p.Branch(isa.OpBNE, isa.RegA0, isa.RegZero, "serve")
	p.I(isa.OpADD, rTmp1, isa.RegA1, isa.RegZero, 0) // n records

	p.Li(rIdx, 0)
	p.Label("xform")
	p.Branch(isa.OpBEQ, rIdx, rTmp1, "reply")
	// rTmp2 = rData + 104·idx (record base), rTmp3 = rData + 64·idx.
	p.I(isa.OpSLLI, rTmp2, rIdx, 0, 3)
	p.I(isa.OpSLLI, rTmp3, rIdx, 0, 5)
	p.I(isa.OpADD, rTmp2, rTmp2, rTmp3, 0)
	p.I(isa.OpSLLI, rTmp3, rIdx, 0, 6)
	p.I(isa.OpADD, rTmp2, rTmp2, rTmp3, 0)
	p.I(isa.OpADD, rTmp2, rTmp2, rData, 0)
	p.I(isa.OpSLLI, rTmp3, rIdx, 0, 6)
	p.I(isa.OpADD, rTmp3, rTmp3, rData, 0)
	transform(p)
	p.I(isa.OpADDI, rIdx, rIdx, 0, 1)
	p.J("xform")

	p.Label("reply")
	// Responses are plain ring messages: descriptor validation guards
	// where data *enters* the buffer (the request path and any enclave
	// bulk_send), while a reply is an application echo that need not
	// parse as descriptors — the echo server's checksum overwrites the
	// tag word. Full ring-caller discipline: retry ErrRetry and
	// ErrInvalidState (response ring full), advance past partial
	// transfers, die on anything else. rTmp2 = cursor, rTmp3 = left.
	p.I(isa.OpADDI, rTmp2, rData, 0, dRingSend)
	p.I(isa.OpADD, rTmp3, rTmp1, isa.RegZero, 0)
	p.Label("send")
	p.Branch(isa.OpBEQ, rTmp3, isa.RegZero, "serve")
	p.I(isa.OpADD, isa.RegA0, rShared, isa.RegZero, 0)
	p.I(isa.OpADD, isa.RegA1, rTmp2, isa.RegZero, 0)
	p.I(isa.OpADD, isa.RegA2, rTmp3, isa.RegZero, 0)
	ecall(p, api.CallRingSend)
	p.Branch(isa.OpBEQ, isa.RegA0, isa.RegZero, "sent")
	p.Li(rTmp4, int32(api.ErrRetry))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "send")
	p.Li(rTmp4, int32(api.ErrInvalidState))
	p.Branch(isa.OpBEQ, isa.RegA0, rTmp4, "send")
	p.J("die")
	p.Label("sent")
	p.I(isa.OpSLLI, rTmp4, isa.RegA1, 0, 6) // sent × RingMsgSize
	p.I(isa.OpADD, rTmp2, rTmp2, rTmp4, 0)
	p.I(isa.OpSUB, rTmp3, rTmp3, isa.RegA1, 0)
	p.J("send")

	p.Label("die")
	p.Li(isa.RegA0, WorkerExitStatus)
	exitCall(p)
	return p
}

// BulkEchoServer answers each descriptor message with word 0 replaced
// by a checksum over the described buffer spans — one 64-bit load per
// page (the first word of each page-strided step), so the enclave
// provably dereferenced its mapping without the serve cost scaling per
// byte — and words 1..7 echoed verbatim (so the reply still carries
// the descriptor list the host sent).
func BulkEchoServer(l Layout) *asm.Program {
	const payload = dRingRecv + api.RingStampSize
	return bulkServer(l, func(p *asm.Program) {
		p.I(isa.OpLD, isa.RegA3, rData, 0, dBulkVA)   // bulk window base
		p.Li(isa.RegA4, 0)                            // checksum
		p.I(isa.OpLD, isa.RegA5, rTmp2, 0, payload+8) // ndesc
		p.Li(isa.RegA6, 0)                            // desc index
		p.Label("edesc")
		p.Branch(isa.OpBEQ, isa.RegA6, isa.RegA5, "edone")
		p.I(isa.OpSLLI, rTmp4, isa.RegA6, 0, 4) // 16·i
		p.I(isa.OpADD, rTmp4, rTmp4, rTmp2, 0)
		p.I(isa.OpLD, rTmp5, rTmp4, 0, payload+16) // offset
		p.I(isa.OpLD, rTmp6, rTmp4, 0, payload+24) // length
		p.I(isa.OpADD, rTmp5, rTmp5, isa.RegA3, 0) // cursor = base+off
		p.I(isa.OpADD, rTmp6, rTmp6, rTmp5, 0)     // end = cursor+len
		p.Label("epage")
		p.Branch(isa.OpBLTU, rTmp5, rTmp6, "ebody")
		p.J("enext")
		p.Label("ebody")
		p.I(isa.OpLD, rTmp4, rTmp5, 0, 0)
		p.I(isa.OpADD, isa.RegA4, isa.RegA4, rTmp4, 0)
		p.I(isa.OpADD, rTmp5, rTmp5, rStride, 0)
		p.J("epage")
		p.Label("enext")
		p.I(isa.OpADDI, isa.RegA6, isa.RegA6, 0, 1)
		p.J("edesc")
		p.Label("edone")
		p.I(isa.OpSD, 0, rTmp3, isa.RegA4, dRingSend)
		for w := 1; w < 8; w++ {
			p.I(isa.OpLD, rTmp4, rTmp2, 0, int32(payload+8*w))
			p.I(isa.OpSD, 0, rTmp3, rTmp4, int32(dRingSend+8*w))
		}
	})
}

// BulkEchoExpected computes the echo server's response for a
// descriptor message against the buffer contents buf — the Go-side
// replay the harness checks results against. Descriptor offsets must
// be 8-byte aligned (unaligned enclave loads are out of contract).
func BulkEchoExpected(payload, buf []byte) []byte {
	out := make([]byte, api.RingMsgSize)
	copy(out, payload)
	var acc uint64
	for _, d := range api.DecodeBulkDescs(payload) {
		for p := d[0]; p < d[0]+d[1]; p += mem.PageSize {
			acc += binary.LittleEndian.Uint64(buf[p:])
		}
	}
	binary.LittleEndian.PutUint64(out, acc)
	return out
}

// BulkKVServer is the stateful bulk worker: requests carry exactly one
// descriptor (offset, length ≤ 4096, length a multiple of 8) plus an
// opcode at payload byte 32 and a key at byte 40. put copies the
// described buffer span into the key's private slot page; any other
// opcode (conventionally RingOpGet) copies the slot back out into the
// described span. The response echoes the request payload verbatim —
// the data itself travels through the buffer, which is the point.
// Values live in private enclave pages, so clones diverge through COW
// exactly like RingKVServer's word-sized store.
func BulkKVServer(l Layout) *asm.Program {
	const payload = dRingRecv + api.RingStampSize
	slots := BulkKVSlotsVA(l)
	return bulkServer(l, func(p *asm.Program) {
		p.I(isa.OpLD, isa.RegA3, rData, 0, dBulkVA)    // bulk window base
		p.I(isa.OpLD, rTmp5, rTmp2, 0, payload+16)     // offset
		p.I(isa.OpLD, rTmp6, rTmp2, 0, payload+24)     // length
		p.I(isa.OpLD, isa.RegA4, rTmp2, 0, payload+32) // op
		p.I(isa.OpLD, isa.RegA5, rTmp2, 0, payload+40) // key
		p.I(isa.OpADD, rTmp5, rTmp5, isa.RegA3, 0)     // buffer span base
		p.I(isa.OpANDI, isa.RegA6, isa.RegA5, 0, BulkKVSlots-1)
		p.I(isa.OpSLLI, isa.RegA6, isa.RegA6, 0, 12)
		p.Li64(rTmp4, slots)
		p.I(isa.OpADD, isa.RegA6, isa.RegA6, rTmp4, 0) // slot page base
		p.Li(rTmp4, RingOpPut)
		p.Branch(isa.OpBNE, isa.RegA4, rTmp4, "kget")
		p.Li(rTmp4, 0) // put: buffer span → slot
		p.Label("kput")
		p.Branch(isa.OpBLTU, rTmp4, rTmp6, "kputb")
		p.J("kout")
		p.Label("kputb")
		p.I(isa.OpADD, isa.RegA3, rTmp5, rTmp4, 0)
		p.I(isa.OpLD, isa.RegA3, isa.RegA3, 0, 0)
		p.I(isa.OpADD, isa.RegA5, isa.RegA6, rTmp4, 0)
		p.I(isa.OpSD, 0, isa.RegA5, isa.RegA3, 0)
		p.I(isa.OpADDI, rTmp4, rTmp4, 0, 8)
		p.J("kput")
		p.Label("kget")
		p.Li(rTmp4, 0) // get: slot → buffer span
		p.Label("kgetl")
		p.Branch(isa.OpBLTU, rTmp4, rTmp6, "kgetb")
		p.J("kout")
		p.Label("kgetb")
		p.I(isa.OpADD, isa.RegA3, isa.RegA6, rTmp4, 0)
		p.I(isa.OpLD, isa.RegA3, isa.RegA3, 0, 0)
		p.I(isa.OpADD, isa.RegA5, rTmp5, rTmp4, 0)
		p.I(isa.OpSD, 0, isa.RegA5, isa.RegA3, 0)
		p.I(isa.OpADDI, rTmp4, rTmp4, 0, 8)
		p.J("kgetl")
		p.Label("kout")
		for w := 0; w < 8; w++ {
			p.I(isa.OpLD, rTmp4, rTmp2, 0, int32(payload+8*w))
			p.I(isa.OpSD, 0, rTmp3, rTmp4, int32(dRingSend+8*w))
		}
	})
}

// BulkKVRequest builds a bulk KV descriptor message: one descriptor
// (off, ln) naming the value's span in the shared buffer, the opcode
// at byte 32 and the key at byte 40. ln must be a multiple of 8, at
// most a page.
func BulkKVRequest(op, key, off, ln uint64) []byte {
	msg := api.EncodeBulkDescs([2]uint64{off, ln})
	binary.LittleEndian.PutUint64(msg[32:], op)
	binary.LittleEndian.PutUint64(msg[40:], key)
	return msg[:]
}

// BulkSpec wraps a bulk-serving program in an enclave spec: the
// standard layout plus the KV slot pages and a shared window at
// l.SharedVA, which forces the page-table plan to allocate the 2 MiB
// leaf the bulk window VAs live in (bulk_map allocates no tables).
func BulkSpec(l Layout, prog *asm.Program, regions []int, sharedPA uint64) (*os.EnclaveSpec, error) {
	spec, err := Spec(l, prog, nil, regions,
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < BulkKVSlots; i++ {
		spec.Pages = append(spec.Pages, os.EnclavePage{
			VA: BulkKVSlotsVA(l) + i*mem.PageSize, Perms: pt.R | pt.W,
		})
	}
	return spec, nil
}
