package isa

// Block-executable instruction kernels.
//
// The machine's trace-compilation tier (internal/hw/machine/block.go)
// promotes hot straight-line runs of decoded instructions into
// "superinstruction" chains: one Go closure per instruction, specialized
// at compile time against the decoded operands, executed back to back
// with the per-instruction fetch/decode/dispatch scaffolding hoisted out
// of the loop. This file holds the ISA half of that tier: the fused
// kernels for every computational and control-flow opcode, plus the
// small hooks (trap-buffer fill, fault-cause mapping, access-spec
// queries) the machine-side memory kernels need to reproduce
// ExecDecoded's semantics bit-for-bit.
//
// Specialization rules, in order of what they buy:
//
//   - Operands are burned into the closure as pre-masked array indices,
//     so the register file is accessed directly (no Reg/SetReg calls,
//     no bounds checks): the "block-level register caching" of the
//     tier. This is only legal when no operand names x0 — the x0 slot
//     of CPU.Regs is not architecturally observable and must be neither
//     read nor written — so any kernel touching x0 falls back to the
//     accessor-based variant, which is exact by construction.
//   - Immediates are sign-extended (and shift amounts masked) once, at
//     compile time.
//   - Branch and jump targets are absolute addresses computed at
//     compile time from the instruction's VA; only JALR resolves its
//     target at runtime.
//
// Base cycle costs are NOT charged by the kernels: the block compiler
// batches them (BlockCost) into one addition per segment, which is
// exact because kernels of this file cannot trap and therefore always
// retire once their segment is entered.

// BlockALU returns the fused kernel for a computational instruction —
// ALU register/immediate ops, LI, NOP — or nil if in is not in that
// class (memory, control flow, system, or an undecodable word). The
// kernel performs exactly ExecDecoded's register update for the op and
// nothing else: no cycles, no PC movement, no traps.
func BlockALU(in Instr) func(*CPU) {
	direct := in.Rd != RegZero && in.Rs1 != RegZero && in.Rs2 != RegZero
	rd, a, b := in.Rd%NumRegs, in.Rs1%NumRegs, in.Rs2%NumRegs
	imm := sext(in.Imm)
	sh := uint32(in.Imm) & 63

	switch in.Op {
	case OpNOP:
		return func(*CPU) {}

	case OpADD:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] + c.Regs[b] }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)+c.Reg(b)) }
	case OpSUB:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] - c.Regs[b] }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)-c.Reg(b)) }
	case OpAND:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] & c.Regs[b] }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)&c.Reg(b)) }
	case OpOR:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] | c.Regs[b] }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)|c.Reg(b)) }
	case OpXOR:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] ^ c.Regs[b] }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)^c.Reg(b)) }
	case OpSLL:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] << (c.Regs[b] & 63) }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)<<(c.Reg(b)&63)) }
	case OpSRL:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] >> (c.Regs[b] & 63) }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)>>(c.Reg(b)&63)) }
	case OpSRA:
		if direct {
			return func(c *CPU) { c.Regs[rd] = uint64(int64(c.Regs[a]) >> (c.Regs[b] & 63)) }
		}
		return func(c *CPU) { c.SetReg(rd, uint64(int64(c.Reg(a))>>(c.Reg(b)&63))) }
	case OpSLT:
		if direct {
			return func(c *CPU) { c.Regs[rd] = b2u(int64(c.Regs[a]) < int64(c.Regs[b])) }
		}
		return func(c *CPU) { c.SetReg(rd, b2u(int64(c.Reg(a)) < int64(c.Reg(b)))) }
	case OpSLTU:
		if direct {
			return func(c *CPU) { c.Regs[rd] = b2u(c.Regs[a] < c.Regs[b]) }
		}
		return func(c *CPU) { c.SetReg(rd, b2u(c.Reg(a) < c.Reg(b))) }
	case OpMUL:
		if direct {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] * c.Regs[b] }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)*c.Reg(b)) }
	case OpDIVU:
		if direct {
			return func(c *CPU) {
				if d := c.Regs[b]; d == 0 {
					c.Regs[rd] = ^uint64(0)
				} else {
					c.Regs[rd] = c.Regs[a] / d
				}
			}
		}
		return func(c *CPU) {
			if d := c.Reg(b); d == 0 {
				c.SetReg(rd, ^uint64(0))
			} else {
				c.SetReg(rd, c.Reg(a)/d)
			}
		}
	case OpREMU:
		if direct {
			return func(c *CPU) {
				if d := c.Regs[b]; d == 0 {
					c.Regs[rd] = c.Regs[a]
				} else {
					c.Regs[rd] = c.Regs[a] % d
				}
			}
		}
		return func(c *CPU) {
			if d := c.Reg(b); d == 0 {
				c.SetReg(rd, c.Reg(a))
			} else {
				c.SetReg(rd, c.Reg(a)%d)
			}
		}

	case OpADDI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] + imm }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)+imm) }
	case OpANDI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] & imm }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)&imm) }
	case OpORI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] | imm }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)|imm) }
	case OpXORI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] ^ imm }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)^imm) }
	case OpSLLI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] << sh }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)<<sh) }
	case OpSRLI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = c.Regs[a] >> sh }
		}
		return func(c *CPU) { c.SetReg(rd, c.Reg(a)>>sh) }
	case OpSRAI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = uint64(int64(c.Regs[a]) >> sh) }
		}
		return func(c *CPU) { c.SetReg(rd, uint64(int64(c.Reg(a))>>sh)) }
	case OpSLTI:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = b2u(int64(c.Regs[a]) < int64(imm)) }
		}
		return func(c *CPU) { c.SetReg(rd, b2u(int64(c.Reg(a)) < int64(imm))) }
	case OpSLTIU:
		if in.Rd != RegZero && in.Rs1 != RegZero {
			return func(c *CPU) { c.Regs[rd] = b2u(c.Regs[a] < imm) }
		}
		return func(c *CPU) { c.SetReg(rd, b2u(c.Reg(a) < imm)) }
	case OpLI:
		if in.Rd != RegZero {
			return func(c *CPU) { c.Regs[rd] = imm }
		}
		return func(*CPU) {}
	}
	return nil
}

// BlockTerm returns the fused kernel for a control-flow instruction at
// va — conditional branches, JAL, JALR — or nil if in is not control
// flow. The kernel performs the op's register update and returns the
// next PC; branch and JAL targets are absolute addresses burned in at
// compile time. As with BlockALU, base cycles are the compiler's job.
func BlockTerm(in Instr, va uint64) func(*CPU) uint64 {
	rd, a, b := in.Rd%NumRegs, in.Rs1%NumRegs, in.Rs2%NumRegs
	taken := va + sext(in.Imm)
	fall := va + InstrSize

	switch in.Op {
	case OpBEQ:
		if in.Rs1 != RegZero && in.Rs2 != RegZero {
			return func(c *CPU) uint64 {
				if c.Regs[a] == c.Regs[b] {
					return taken
				}
				return fall
			}
		}
		return func(c *CPU) uint64 {
			if c.Reg(a) == c.Reg(b) {
				return taken
			}
			return fall
		}
	case OpBNE:
		if in.Rs1 != RegZero && in.Rs2 != RegZero {
			return func(c *CPU) uint64 {
				if c.Regs[a] != c.Regs[b] {
					return taken
				}
				return fall
			}
		}
		return func(c *CPU) uint64 {
			if c.Reg(a) != c.Reg(b) {
				return taken
			}
			return fall
		}
	case OpBLT:
		if in.Rs1 != RegZero && in.Rs2 != RegZero {
			return func(c *CPU) uint64 {
				if int64(c.Regs[a]) < int64(c.Regs[b]) {
					return taken
				}
				return fall
			}
		}
		return func(c *CPU) uint64 {
			if int64(c.Reg(a)) < int64(c.Reg(b)) {
				return taken
			}
			return fall
		}
	case OpBGE:
		if in.Rs1 != RegZero && in.Rs2 != RegZero {
			return func(c *CPU) uint64 {
				if int64(c.Regs[a]) >= int64(c.Regs[b]) {
					return taken
				}
				return fall
			}
		}
		return func(c *CPU) uint64 {
			if int64(c.Reg(a)) >= int64(c.Reg(b)) {
				return taken
			}
			return fall
		}
	case OpBLTU:
		if in.Rs1 != RegZero && in.Rs2 != RegZero {
			return func(c *CPU) uint64 {
				if c.Regs[a] < c.Regs[b] {
					return taken
				}
				return fall
			}
		}
		return func(c *CPU) uint64 {
			if c.Reg(a) < c.Reg(b) {
				return taken
			}
			return fall
		}
	case OpBGEU:
		if in.Rs1 != RegZero && in.Rs2 != RegZero {
			return func(c *CPU) uint64 {
				if c.Regs[a] >= c.Regs[b] {
					return taken
				}
				return fall
			}
		}
		return func(c *CPU) uint64 {
			if c.Reg(a) >= c.Reg(b) {
				return taken
			}
			return fall
		}

	case OpJAL:
		return func(c *CPU) uint64 {
			c.SetReg(rd, fall)
			return taken
		}
	case OpJALR:
		imm := sext(in.Imm)
		// The target reads rs1 before the link write, exactly as
		// ExecDecoded does: JALR with rd == rs1 must jump to the old
		// value.
		return func(c *CPU) uint64 {
			target := c.Reg(a) + imm
			c.SetReg(rd, fall)
			return target
		}
	}
	return nil
}

// BlockCost returns the base cycle cost ExecDecoded charges for op —
// the cost the block compiler batches per segment. Memory ops return 0:
// their cost is entirely bus cycles, charged at runtime by the machine's
// memory kernels.
func BlockCost(op Op) uint64 {
	switch op {
	case OpMUL:
		return cycleMul
	case OpDIVU, OpREMU:
		return cycleDiv
	case OpJAL, OpJALR:
		return cycleJump
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return cycleBranch
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWU, OpLD, OpSB, OpSH, OpSW, OpSD:
		return 0
	default:
		// ALU, LI, NOP (cycleALU) — and the system ops (cycleSystem),
		// which the compiler never fuses, share the same base cost.
		return cycleALU
	}
}

// LoadSpec and StoreSpec expose the access width (and sign-extension,
// for loads) of a memory opcode to the machine's block memory kernels.
func LoadSpec(op Op) (width int, signed bool) { return loadSpec(op) }

// StoreSpec is the store counterpart of LoadSpec.
func StoreSpec(op Op) int { return storeSpec(op) }

// IsLoad reports whether op is a load instruction.
func IsLoad(op Op) bool {
	switch op {
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWU, OpLD:
		return true
	}
	return false
}

// IsStore reports whether op is a store instruction.
func IsStore(op Op) bool {
	switch op {
	case OpSB, OpSH, OpSW, OpSD:
		return true
	}
	return false
}

// Trapped fills the CPU's reusable trap buffer and returns it, for
// machine-side block kernels that must construct traps without
// allocating — the exported face of the trapped helper Step uses. The
// returned Trap obeys the same lifetime contract as Step's: valid until
// the next trap on this CPU.
func (c *CPU) Trapped(cause Cause, pc, value uint64) *Trap {
	return c.trapped(cause, pc, value)
}

// LoadCause maps a memory fault to the trap cause a load raises.
func (f *MemFault) LoadCause() Cause { return f.trapCause(accLoad) }

// StoreCause maps a memory fault to the trap cause a store raises.
func (f *MemFault) StoreCause() Cause { return f.trapCause(accStore) }

// SignExtendVal sign-extends the low width bytes of v, as loads of
// signed sub-word widths do.
func SignExtendVal(v uint64, width int) uint64 { return signExtend(v, width) }

// Micro-op kinds recognized by BlockUop. These are the handful of ALU
// ops that dominate compiled blocks and whose direct-register form is a
// single expression; the block engine executes them inline through a
// jump-table switch instead of an indirect kernel call, which removes
// the call/return and argument-shuffle overhead from the hottest part
// of segment execution. UopNone (0) means "use the BlockALU kernel".
const (
	UopNone = iota
	UopADD
	UopSUB
	UopAND
	UopOR
	UopXOR
	UopADDI
	UopANDI
	UopORI
	UopXORI
	UopSLLI
	UopSRLI
	UopLI
)

// BlockUop classifies in as an inline micro-op: kind is one of the Uop
// constants, rd/a/b are pre-masked register indices safe for direct
// Regs array access, and imm is the pre-extended immediate (for the
// shift kinds, the pre-masked shift amount). ok is false when the op
// is outside the inlined set or any relevant operand names x0 — those
// must go through the BlockALU kernel, whose accessor-based fallback is
// exact for x0. The register update each kind implies is exactly the
// direct-form BlockALU kernel for the same op; the two must stay in
// lockstep (guarded by TestFastSlowEquivalence and the differential
// fuzzer).
func BlockUop(in Instr) (kind uint8, rd, a, b uint8, imm uint64, ok bool) {
	rd, a, b = in.Rd%NumRegs, in.Rs1%NumRegs, in.Rs2%NumRegs
	switch in.Op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR:
		if in.Rd == RegZero || in.Rs1 == RegZero || in.Rs2 == RegZero {
			return 0, 0, 0, 0, 0, false
		}
		switch in.Op {
		case OpADD:
			kind = UopADD
		case OpSUB:
			kind = UopSUB
		case OpAND:
			kind = UopAND
		case OpOR:
			kind = UopOR
		default:
			kind = UopXOR
		}
		return kind, rd, a, b, 0, true
	case OpADDI, OpANDI, OpORI, OpXORI:
		if in.Rd == RegZero || in.Rs1 == RegZero {
			return 0, 0, 0, 0, 0, false
		}
		switch in.Op {
		case OpADDI:
			kind = UopADDI
		case OpANDI:
			kind = UopANDI
		case OpORI:
			kind = UopORI
		default:
			kind = UopXORI
		}
		return kind, rd, a, 0, sext(in.Imm), true
	case OpSLLI, OpSRLI:
		if in.Rd == RegZero || in.Rs1 == RegZero {
			return 0, 0, 0, 0, 0, false
		}
		kind = UopSLLI
		if in.Op == OpSRLI {
			kind = UopSRLI
		}
		return kind, rd, a, 0, uint64(uint32(in.Imm) & 63), true
	case OpLI:
		if in.Rd == RegZero {
			return 0, 0, 0, 0, 0, false
		}
		return UopLI, rd, 0, 0, sext(in.Imm), true
	}
	return 0, 0, 0, 0, 0, false
}

// Terminal micro-op kinds recognized by BlockTermUop. These are the
// control-flow terminals whose next PC is a choice between two
// compile-time constants — JAL and the direct-register conditional
// branches — which the block engine executes inline instead of through
// the BlockTerm closure, removing an indirect call from every block
// pass. TermNone (0) means "use the BlockTerm closure".
const (
	TermNone = iota
	TermJAL
	TermBEQ
	TermBNE
	TermBLT
	TermBGE
	TermBLTU
	TermBGEU
)

// BlockTermUop classifies a control-flow terminal at va as an inline
// micro-op: kind is one of the Term constants, a/b/rd are pre-masked
// register indices, and taken/fall are the two possible next-PC values,
// resolved at compile time. ok is false for JALR (dynamic target) and
// for branches with an x0 operand — those keep the BlockTerm closure,
// whose accessor-based fallback is exact for x0. The update each kind
// implies is exactly the direct-form BlockTerm kernel for the same op
// (for TermJAL, the link write is skipped when rd is 0, mirroring
// SetReg); the two must stay in lockstep.
func BlockTermUop(in Instr, va uint64) (kind uint8, a, b, rd uint8, taken, fall uint64, ok bool) {
	a, b, rd = in.Rs1%NumRegs, in.Rs2%NumRegs, in.Rd%NumRegs
	taken, fall = va+sext(in.Imm), va+InstrSize
	switch in.Op {
	case OpJAL:
		return TermJAL, a, b, rd, taken, fall, true
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		if in.Rs1 == RegZero || in.Rs2 == RegZero {
			return 0, 0, 0, 0, 0, 0, false
		}
		switch in.Op {
		case OpBEQ:
			kind = TermBEQ
		case OpBNE:
			kind = TermBNE
		case OpBLT:
			kind = TermBLT
		case OpBGE:
			kind = TermBGE
		case OpBLTU:
			kind = TermBLTU
		default:
			kind = TermBGEU
		}
		return kind, a, b, rd, taken, fall, true
	}
	return 0, 0, 0, 0, 0, 0, false
}
