package isa

// Bus is the CPU's window onto the machine: every fetch, load and store
// goes through it, which is where the machine applies translation,
// isolation checks and cache timing. Cycles returned are added to the
// core's cycle counter.
type Bus interface {
	// FetchInstr reads the 8-byte instruction word at va.
	FetchInstr(va uint64) (word uint64, cycles uint64, fault *MemFault)
	// Load reads width bytes at va.
	Load(va uint64, width int) (val uint64, cycles uint64, fault *MemFault)
	// Store writes width bytes at va.
	Store(va uint64, width int, val uint64) (cycles uint64, fault *MemFault)
}

// CPU is the architectural state of one SRV64 hart.
type CPU struct {
	Regs   [NumRegs]uint64
	PC     uint64
	Mode   Priv
	Cycles uint64
	Halted bool

	// trap is the reusable buffer Step returns traps in, so the hot
	// trap-dispatch path performs no heap allocation. A returned *Trap
	// is valid until the next Step on this CPU; holders that outlive
	// that must copy it (Machine.Run does before returning a RunResult).
	trap Trap
}

// Reg returns register r, with x0 hardwired to zero.
func (c *CPU) Reg(r uint8) uint64 {
	if r == RegZero {
		return 0
	}
	return c.Regs[r%NumRegs]
}

// SetReg writes register r; writes to x0 are discarded.
func (c *CPU) SetReg(r uint8, v uint64) {
	if r != RegZero {
		c.Regs[r%NumRegs] = v
	}
}

// Per-instruction base cycle costs (memory latency is added by the Bus).
const (
	cycleALU    = 1
	cycleMul    = 3
	cycleDiv    = 12
	cycleBranch = 1
	cycleJump   = 1
	cycleSystem = 1
)

func sext(imm int32) uint64 { return uint64(int64(imm)) }

// trapped fills the CPU's trap buffer and returns it.
func (c *CPU) trapped(cause Cause, pc, value uint64) *Trap {
	c.trap = Trap{Cause: cause, PC: pc, Value: value}
	return &c.trap
}

// Step executes one instruction. It returns nil if execution may
// continue, or the Trap that stopped it. The PC is left at the trapping
// instruction for traps (so the handler can resume or skip it) and at
// the next instruction otherwise. The returned Trap points into a
// per-CPU buffer valid until the next Step.
//
// Step is the reference fetch-decode-execute sequence. A caller with a
// faster fetch (the machine's decoded-instruction cache) composes the
// same sequence from the pieces — PreStep, its own fetch, FetchFault
// on a fetch fault, ExecDecoded otherwise — as machine.Run does;
// modeled cycles and trap behavior must be identical either way.
func (c *CPU) Step(bus Bus) *Trap {
	if tr := c.PreStep(); tr != nil {
		return tr
	}
	w, cyc, fault := bus.FetchInstr(c.PC)
	c.Cycles += cyc
	if fault != nil {
		return c.FetchFault(fault)
	}
	return c.ExecDecoded(Decode(w), bus)
}

// PreStep checks the pre-fetch conditions of a step (halt latch, PC
// alignment), returning the trap that stops the step, or nil if the
// caller should proceed to fetch at PC.
func (c *CPU) PreStep() *Trap {
	if c.Halted {
		return c.trapped(CauseHalt, c.PC, 0)
	}
	if c.PC&(InstrSize-1) != 0 {
		return c.trapped(CauseMisalignedFetch, c.PC, c.PC)
	}
	return nil
}

// FetchFault converts a fetch-time memory fault into its trap.
func (c *CPU) FetchFault(f *MemFault) *Trap {
	return c.trapped(f.trapCause(accFetch), c.PC, f.Addr)
}

// ExecDecoded executes one already-fetched instruction at PC. in is
// one machine word, passed by value.
func (c *CPU) ExecDecoded(in Instr, bus Bus) *Trap {
	nextPC := c.PC + InstrSize

	switch in.Op {
	case OpNOP:
		c.Cycles += cycleALU

	case OpHALT:
		c.Halted = true
		c.Cycles += cycleSystem
		return c.trapped(CauseHalt, c.PC, 0)

	case OpADD:
		c.SetReg(in.Rd, c.Reg(in.Rs1)+c.Reg(in.Rs2))
		c.Cycles += cycleALU
	case OpSUB:
		c.SetReg(in.Rd, c.Reg(in.Rs1)-c.Reg(in.Rs2))
		c.Cycles += cycleALU
	case OpAND:
		c.SetReg(in.Rd, c.Reg(in.Rs1)&c.Reg(in.Rs2))
		c.Cycles += cycleALU
	case OpOR:
		c.SetReg(in.Rd, c.Reg(in.Rs1)|c.Reg(in.Rs2))
		c.Cycles += cycleALU
	case OpXOR:
		c.SetReg(in.Rd, c.Reg(in.Rs1)^c.Reg(in.Rs2))
		c.Cycles += cycleALU
	case OpSLL:
		c.SetReg(in.Rd, c.Reg(in.Rs1)<<(c.Reg(in.Rs2)&63))
		c.Cycles += cycleALU
	case OpSRL:
		c.SetReg(in.Rd, c.Reg(in.Rs1)>>(c.Reg(in.Rs2)&63))
		c.Cycles += cycleALU
	case OpSRA:
		c.SetReg(in.Rd, uint64(int64(c.Reg(in.Rs1))>>(c.Reg(in.Rs2)&63)))
		c.Cycles += cycleALU
	case OpSLT:
		c.SetReg(in.Rd, b2u(int64(c.Reg(in.Rs1)) < int64(c.Reg(in.Rs2))))
		c.Cycles += cycleALU
	case OpSLTU:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) < c.Reg(in.Rs2)))
		c.Cycles += cycleALU
	case OpMUL:
		c.SetReg(in.Rd, c.Reg(in.Rs1)*c.Reg(in.Rs2))
		c.Cycles += cycleMul
	case OpDIVU:
		d := c.Reg(in.Rs2)
		if d == 0 {
			c.SetReg(in.Rd, ^uint64(0)) // RISC-V semantics: no trap
		} else {
			c.SetReg(in.Rd, c.Reg(in.Rs1)/d)
		}
		c.Cycles += cycleDiv
	case OpREMU:
		d := c.Reg(in.Rs2)
		if d == 0 {
			c.SetReg(in.Rd, c.Reg(in.Rs1))
		} else {
			c.SetReg(in.Rd, c.Reg(in.Rs1)%d)
		}
		c.Cycles += cycleDiv

	case OpADDI:
		c.SetReg(in.Rd, c.Reg(in.Rs1)+sext(in.Imm))
		c.Cycles += cycleALU
	case OpANDI:
		c.SetReg(in.Rd, c.Reg(in.Rs1)&sext(in.Imm))
		c.Cycles += cycleALU
	case OpORI:
		c.SetReg(in.Rd, c.Reg(in.Rs1)|sext(in.Imm))
		c.Cycles += cycleALU
	case OpXORI:
		c.SetReg(in.Rd, c.Reg(in.Rs1)^sext(in.Imm))
		c.Cycles += cycleALU
	case OpSLLI:
		c.SetReg(in.Rd, c.Reg(in.Rs1)<<(uint32(in.Imm)&63))
		c.Cycles += cycleALU
	case OpSRLI:
		c.SetReg(in.Rd, c.Reg(in.Rs1)>>(uint32(in.Imm)&63))
		c.Cycles += cycleALU
	case OpSRAI:
		c.SetReg(in.Rd, uint64(int64(c.Reg(in.Rs1))>>(uint32(in.Imm)&63)))
		c.Cycles += cycleALU
	case OpSLTI:
		c.SetReg(in.Rd, b2u(int64(c.Reg(in.Rs1)) < int64(sext(in.Imm))))
		c.Cycles += cycleALU
	case OpSLTIU:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) < sext(in.Imm)))
		c.Cycles += cycleALU
	case OpLI:
		c.SetReg(in.Rd, sext(in.Imm))
		c.Cycles += cycleALU

	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWU, OpLD:
		width, signed := loadSpec(in.Op)
		addr := c.Reg(in.Rs1) + sext(in.Imm)
		val, cyc, fault := bus.Load(addr, width)
		c.Cycles += cyc
		if fault != nil {
			return c.trapped(fault.trapCause(accLoad), c.PC, fault.Addr)
		}
		if signed {
			val = signExtend(val, width)
		}
		c.SetReg(in.Rd, val)

	case OpSB, OpSH, OpSW, OpSD:
		width := storeSpec(in.Op)
		addr := c.Reg(in.Rs1) + sext(in.Imm)
		cyc, fault := bus.Store(addr, width, c.Reg(in.Rs2))
		c.Cycles += cyc
		if fault != nil {
			return c.trapped(fault.trapCause(accStore), c.PC, fault.Addr)
		}

	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		if branchTaken(in.Op, c.Reg(in.Rs1), c.Reg(in.Rs2)) {
			nextPC = c.PC + sext(in.Imm)
		}
		c.Cycles += cycleBranch

	case OpJAL:
		c.SetReg(in.Rd, c.PC+InstrSize)
		nextPC = c.PC + sext(in.Imm)
		c.Cycles += cycleJump
	case OpJALR:
		target := c.Reg(in.Rs1) + sext(in.Imm)
		c.SetReg(in.Rd, c.PC+InstrSize)
		nextPC = target
		c.Cycles += cycleJump

	case OpECALL:
		c.Cycles += cycleSystem
		cause := CauseECallU
		if c.Mode == PrivS {
			cause = CauseECallS
		}
		return c.trapped(cause, c.PC, c.Reg(RegA7))
	case OpEBREAK:
		c.Cycles += cycleSystem
		return c.trapped(CauseBreakpoint, c.PC, 0)
	case OpRDCYCLE:
		c.SetReg(in.Rd, c.Cycles)
		c.Cycles += cycleSystem

	default:
		// Decode is lossless, so the original word is reconstructible.
		return c.trapped(CauseIllegal, c.PC, in.Encode())
	}

	c.PC = nextPC
	return nil
}

func loadSpec(op Op) (width int, signed bool) {
	switch op {
	case OpLB:
		return 1, true
	case OpLBU:
		return 1, false
	case OpLH:
		return 2, true
	case OpLHU:
		return 2, false
	case OpLW:
		return 4, true
	case OpLWU:
		return 4, false
	default:
		return 8, false
	}
}

func storeSpec(op Op) int {
	switch op {
	case OpSB:
		return 1
	case OpSH:
		return 2
	case OpSW:
		return 4
	default:
		return 8
	}
}

func branchTaken(op Op, a, b uint64) bool {
	switch op {
	case OpBEQ:
		return a == b
	case OpBNE:
		return a != b
	case OpBLT:
		return int64(a) < int64(b)
	case OpBGE:
		return int64(a) >= int64(b)
	case OpBLTU:
		return a < b
	default:
		return a >= b
	}
}

func signExtend(v uint64, width int) uint64 {
	shift := uint(64 - 8*width)
	return uint64(int64(v<<shift) >> shift)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
