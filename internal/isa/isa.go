// Package isa defines SRV64, the small RISC-V-flavoured instruction set
// executed by the simulated machine's cores. Untrusted OS user code and
// enclave code run as SRV64 programs, so enclave measurement hashes real
// loaded pages, page faults and asynchronous enclave exits interrupt
// real programs, and cache-timing attackers observe the latency of real
// memory accesses.
//
// The encoding is a fixed 8-byte word — opcode, rd, rs1, rs2, and a
// 32-bit immediate — chosen for trivial decode; the semantics follow
// RV64I closely (plus MUL/DIVU/REMU and a cycle-counter read, which the
// attack code in internal/adversary uses as its timing source).
package isa

import "fmt"

// Instruction geometry.
const (
	InstrSize = 8 // bytes per instruction
	NumRegs   = 32
)

// Op is an SRV64 opcode.
type Op uint8

// Opcodes.
const (
	OpNOP Op = iota
	OpHALT

	// rd = rs1 op rs2
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU
	OpMUL
	OpDIVU
	OpREMU

	// rd = rs1 op sext(imm)
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpSLTIU

	// rd = sext(imm)
	OpLI

	// Loads: rd = mem[rs1 + sext(imm)]
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpLWU
	OpLD

	// Stores: mem[rs1 + sext(imm)] = rs2
	OpSB
	OpSH
	OpSW
	OpSD

	// Branches: if cond(rs1, rs2) then pc += sext(imm)
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL  // rd = pc+8; pc += sext(imm)
	OpJALR // rd = pc+8; pc = rs1 + sext(imm)

	// System.
	OpECALL
	OpEBREAK
	OpRDCYCLE // rd = core cycle counter

	opCount // sentinel
)

var opNames = [...]string{
	OpNOP: "nop", OpHALT: "halt",
	OpADD: "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpSLT: "slt", OpSLTU: "sltu",
	OpMUL: "mul", OpDIVU: "divu", OpREMU: "remu",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai", OpSLTI: "slti", OpSLTIU: "sltiu",
	OpLI: "li",
	OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLHU: "lhu", OpLW: "lw", OpLWU: "lwu", OpLD: "ld",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
	OpECALL: "ecall", OpEBREAK: "ebreak", OpRDCYCLE: "rdcycle",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode packs the instruction into its 8-byte little-endian word.
func (i Instr) Encode() uint64 {
	return uint64(i.Op) |
		uint64(i.Rd)<<8 |
		uint64(i.Rs1)<<16 |
		uint64(i.Rs2)<<24 |
		uint64(uint32(i.Imm))<<32
}

// Decode unpacks an 8-byte instruction word.
func Decode(w uint64) Instr {
	return Instr{
		Op:  Op(w & 0xFF),
		Rd:  uint8(w >> 8),
		Rs1: uint8(w >> 16),
		Rs2: uint8(w >> 24),
		Imm: int32(uint32(w >> 32)),
	}
}

func (i Instr) String() string {
	return fmt.Sprintf("%s x%d, x%d, x%d, %d", i.Op, i.Rd, i.Rs1, i.Rs2, i.Imm)
}

// Register ABI names used throughout the repository: x0 is hardwired
// zero, x1 the link register, x2 the stack pointer, x10..x17 argument
// registers a0..a7. ECALLs pass the call number in a7 and arguments in
// a0..a5; results return in a0 (and a1).
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegA0   = 10
	RegA1   = 11
	RegA2   = 12
	RegA3   = 13
	RegA4   = 14
	RegA5   = 15
	RegA6   = 16
	RegA7   = 17
	RegT0   = 5
	RegT1   = 6
	RegT2   = 7
	RegS0   = 8
	RegS1   = 9
)
