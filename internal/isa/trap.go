package isa

import "fmt"

// Priv is a hardware privilege mode.
type Priv uint8

// Privilege modes, low to high. The security monitor occupies M; the
// untrusted OS S; enclaves and ordinary processes U.
const (
	PrivU Priv = iota
	PrivS
	PrivM
)

func (p Priv) String() string {
	switch p {
	case PrivU:
		return "U"
	case PrivS:
		return "S"
	case PrivM:
		return "M"
	default:
		return fmt.Sprintf("priv(%d)", uint8(p))
	}
}

// Cause enumerates trap causes, numbered after the RISC-V privileged
// specification where an equivalent exists.
type Cause uint8

// Trap causes.
const (
	CauseMisalignedFetch   Cause = 0
	CauseFetchAccess       Cause = 1
	CauseIllegal           Cause = 2
	CauseBreakpoint        Cause = 3
	CauseMisalignedLoad    Cause = 4
	CauseLoadAccess        Cause = 5
	CauseMisalignedStore   Cause = 6
	CauseStoreAccess       Cause = 7
	CauseECallU            Cause = 8
	CauseECallS            Cause = 9
	CauseFetchPageFault    Cause = 12
	CauseLoadPageFault     Cause = 13
	CauseStorePageFault    Cause = 15
	CauseTimerInterrupt    Cause = 0x80 | 7
	CauseExternalInterrupt Cause = 0x80 | 11
	CauseHalt              Cause = 0xFF // core executed HALT
)

// IsInterrupt reports whether the cause is asynchronous.
func (c Cause) IsInterrupt() bool { return c&0x80 != 0 && c != CauseHalt }

// IsPageFault reports whether the cause is a paging fault, which the SM
// may deliver to an enclave's fault handler (paper Fig 1).
func (c Cause) IsPageFault() bool {
	return c == CauseFetchPageFault || c == CauseLoadPageFault || c == CauseStorePageFault
}

func (c Cause) String() string {
	switch c {
	case CauseMisalignedFetch:
		return "misaligned-fetch"
	case CauseFetchAccess:
		return "fetch-access-fault"
	case CauseIllegal:
		return "illegal-instruction"
	case CauseBreakpoint:
		return "breakpoint"
	case CauseMisalignedLoad:
		return "misaligned-load"
	case CauseLoadAccess:
		return "load-access-fault"
	case CauseMisalignedStore:
		return "misaligned-store"
	case CauseStoreAccess:
		return "store-access-fault"
	case CauseECallU:
		return "ecall-from-U"
	case CauseECallS:
		return "ecall-from-S"
	case CauseFetchPageFault:
		return "fetch-page-fault"
	case CauseLoadPageFault:
		return "load-page-fault"
	case CauseStorePageFault:
		return "store-page-fault"
	case CauseTimerInterrupt:
		return "timer-interrupt"
	case CauseExternalInterrupt:
		return "external-interrupt"
	case CauseHalt:
		return "halt"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Trap reports why instruction execution stopped.
type Trap struct {
	Cause Cause
	PC    uint64 // pc of the trapping instruction
	Value uint64 // faulting address, or ecall number for ECALLs
}

func (t *Trap) Error() string {
	return fmt.Sprintf("trap %s at pc %#x (tval %#x)", t.Cause, t.PC, t.Value)
}

// FaultKind classifies a memory fault reported by the Bus.
type FaultKind uint8

// Bus fault kinds.
const (
	FaultPage FaultKind = iota + 1
	FaultAccess
	FaultMisaligned
)

// MemFault is a memory access failure reported by the Bus; the CPU
// converts it into the appropriate Trap for the access type.
type MemFault struct {
	Kind FaultKind
	Addr uint64
}

func (f *MemFault) trapCause(acc accessClass) Cause {
	switch f.Kind {
	case FaultMisaligned:
		switch acc {
		case accFetch:
			return CauseMisalignedFetch
		case accLoad:
			return CauseMisalignedLoad
		default:
			return CauseMisalignedStore
		}
	case FaultAccess:
		switch acc {
		case accFetch:
			return CauseFetchAccess
		case accLoad:
			return CauseLoadAccess
		default:
			return CauseStoreAccess
		}
	default:
		switch acc {
		case accFetch:
			return CauseFetchPageFault
		case accLoad:
			return CauseLoadPageFault
		default:
			return CauseStorePageFault
		}
	}
}

type accessClass uint8

const (
	accFetch accessClass = iota
	accLoad
	accStore
)
