package isa

import (
	"encoding/binary"
	"testing"
)

// flatBus is a toy bus with no translation: a flat byte array, fixed
// 1-cycle memory, faulting outside its extent.
type flatBus struct {
	mem []byte
}

func newFlatBus(size int) *flatBus { return &flatBus{mem: make([]byte, size)} }

func (b *flatBus) FetchInstr(va uint64) (uint64, uint64, *MemFault) {
	if va+8 > uint64(len(b.mem)) {
		return 0, 1, &MemFault{Kind: FaultAccess, Addr: va}
	}
	return binary.LittleEndian.Uint64(b.mem[va:]), 1, nil
}

func (b *flatBus) Load(va uint64, width int) (uint64, uint64, *MemFault) {
	if va%uint64(width) != 0 {
		return 0, 1, &MemFault{Kind: FaultMisaligned, Addr: va}
	}
	if va+uint64(width) > uint64(len(b.mem)) {
		return 0, 1, &MemFault{Kind: FaultAccess, Addr: va}
	}
	var v uint64
	for i := width - 1; i >= 0; i-- {
		v = v<<8 | uint64(b.mem[va+uint64(i)])
	}
	return v, 1, nil
}

func (b *flatBus) Store(va uint64, width int, val uint64) (uint64, *MemFault) {
	if va%uint64(width) != 0 {
		return 1, &MemFault{Kind: FaultMisaligned, Addr: va}
	}
	if va+uint64(width) > uint64(len(b.mem)) {
		return 1, &MemFault{Kind: FaultAccess, Addr: va}
	}
	for i := 0; i < width; i++ {
		b.mem[va+uint64(i)] = byte(val >> (8 * uint(i)))
	}
	return 1, nil
}

func (b *flatBus) loadProgram(at uint64, prog []Instr) {
	for i, in := range prog {
		binary.LittleEndian.PutUint64(b.mem[at+uint64(i)*InstrSize:], in.Encode())
	}
}

// run executes until HALT or another trap, bounded by maxSteps.
func run(t *testing.T, cpu *CPU, bus Bus, maxSteps int) *Trap {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		if tr := cpu.Step(bus); tr != nil {
			return tr
		}
	}
	t.Fatal("program did not stop")
	return nil
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: OpADD, Rd: 3, Rs1: 4, Rs2: 5, Imm: 0},
		{Op: OpLI, Rd: 31, Imm: -1},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -64},
		{Op: OpSD, Rs1: 2, Rs2: 9, Imm: 2147483647},
		{Op: OpJAL, Rd: 1, Imm: -2147483648},
	}
	for _, in := range ins {
		if got := Decode(in.Encode()); got != in {
			t.Errorf("round trip: %v -> %v", in, got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: 21},
		{Op: OpLI, Rd: 2, Imm: 2},
		{Op: OpMUL, Rd: 3, Rs1: 1, Rs2: 2},   // 42
		{Op: OpADDI, Rd: 4, Rs1: 3, Imm: -2}, // 40
		{Op: OpSUB, Rd: 5, Rs1: 3, Rs2: 4},   // 2
		{Op: OpDIVU, Rd: 6, Rs1: 3, Rs2: 5},  // 21
		{Op: OpREMU, Rd: 7, Rs1: 3, Rs2: 4},  // 2
		{Op: OpHALT},
	})
	cpu := &CPU{}
	run(t, cpu, bus, 100)
	want := map[uint8]uint64{3: 42, 4: 40, 5: 2, 6: 21, 7: 2}
	for r, v := range want {
		if cpu.Regs[r] != v {
			t.Errorf("x%d = %d, want %d", r, cpu.Regs[r], v)
		}
	}
}

func TestDivByZeroRISCVSemantics(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: 7},
		{Op: OpDIVU, Rd: 2, Rs1: 1, Rs2: 0},
		{Op: OpREMU, Rd: 3, Rs1: 1, Rs2: 0},
		{Op: OpHALT},
	})
	cpu := &CPU{}
	run(t, cpu, bus, 10)
	if cpu.Regs[2] != ^uint64(0) {
		t.Errorf("divu/0 = %#x, want all-ones", cpu.Regs[2])
	}
	if cpu.Regs[3] != 7 {
		t.Errorf("remu/0 = %d, want dividend", cpu.Regs[3])
	}
}

func TestX0Hardwired(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 0, Imm: 99},
		{Op: OpADDI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: OpHALT},
	})
	cpu := &CPU{}
	run(t, cpu, bus, 10)
	if cpu.Regs[0] != 0 {
		t.Error("x0 was written")
	}
	if cpu.Regs[1] != 5 {
		t.Errorf("x1 = %d, want 5 (x0 must read as zero)", cpu.Regs[1])
	}
}

func TestShiftsAndComparisons(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: -8},
		{Op: OpSRAI, Rd: 2, Rs1: 1, Imm: 1},  // -4
		{Op: OpSRLI, Rd: 3, Rs1: 1, Imm: 60}, // 15
		{Op: OpSLTI, Rd: 4, Rs1: 1, Imm: 0},  // 1 (signed)
		{Op: OpSLTIU, Rd: 5, Rs1: 1, Imm: 0}, // 0 (unsigned: huge)
		{Op: OpLI, Rd: 6, Imm: 1},
		{Op: OpSLL, Rd: 7, Rs1: 6, Rs2: 3}, // 1<<15
		{Op: OpHALT},
	})
	cpu := &CPU{}
	run(t, cpu, bus, 20)
	if int64(cpu.Regs[2]) != -4 {
		t.Errorf("srai = %d", int64(cpu.Regs[2]))
	}
	if cpu.Regs[3] != 15 {
		t.Errorf("srli = %d", cpu.Regs[3])
	}
	if cpu.Regs[4] != 1 || cpu.Regs[5] != 0 {
		t.Errorf("slti=%d sltiu=%d", cpu.Regs[4], cpu.Regs[5])
	}
	if cpu.Regs[7] != 1<<15 {
		t.Errorf("sll = %#x", cpu.Regs[7])
	}
}

func TestLoadsStoresAllWidths(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: 0x800}, // buffer base
		{Op: OpLI, Rd: 2, Imm: -2},    // 0xFF..FE
		{Op: OpSD, Rs1: 1, Rs2: 2, Imm: 0},
		{Op: OpLB, Rd: 3, Rs1: 1, Imm: 0},  // sign-extended 0xFE -> -2
		{Op: OpLBU, Rd: 4, Rs1: 1, Imm: 0}, // 0xFE
		{Op: OpLH, Rd: 5, Rs1: 1, Imm: 0},
		{Op: OpLHU, Rd: 6, Rs1: 1, Imm: 0},
		{Op: OpLW, Rd: 7, Rs1: 1, Imm: 0},
		{Op: OpLWU, Rd: 8, Rs1: 1, Imm: 0},
		{Op: OpLD, Rd: 9, Rs1: 1, Imm: 0},
		{Op: OpSB, Rs1: 1, Rs2: 0, Imm: 0}, // clear low byte
		{Op: OpLD, Rd: 10, Rs1: 1, Imm: 0},
		{Op: OpHALT},
	})
	cpu := &CPU{}
	run(t, cpu, bus, 30)
	if int64(cpu.Regs[3]) != -2 || cpu.Regs[4] != 0xFE {
		t.Errorf("lb=%d lbu=%#x", int64(cpu.Regs[3]), cpu.Regs[4])
	}
	if int64(cpu.Regs[5]) != -2 || cpu.Regs[6] != 0xFFFE {
		t.Errorf("lh=%d lhu=%#x", int64(cpu.Regs[5]), cpu.Regs[6])
	}
	if int64(cpu.Regs[7]) != -2 || cpu.Regs[8] != 0xFFFFFFFE {
		t.Errorf("lw=%d lwu=%#x", int64(cpu.Regs[7]), cpu.Regs[8])
	}
	if cpu.Regs[9] != ^uint64(1) {
		t.Errorf("ld=%#x", cpu.Regs[9])
	}
	if cpu.Regs[10] != ^uint64(0xFF) {
		t.Errorf("after sb: %#x", cpu.Regs[10])
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a BNE loop.
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: 0},  // sum
		{Op: OpLI, Rd: 2, Imm: 1},  // i
		{Op: OpLI, Rd: 3, Imm: 11}, // bound
		// loop:
		{Op: OpADD, Rd: 1, Rs1: 1, Rs2: 2},
		{Op: OpADDI, Rd: 2, Rs1: 2, Imm: 1},
		{Op: OpBNE, Rs1: 2, Rs2: 3, Imm: -16}, // back to loop
		{Op: OpHALT},
	})
	cpu := &CPU{}
	run(t, cpu, bus, 1000)
	if cpu.Regs[1] != 55 {
		t.Errorf("sum = %d, want 55", cpu.Regs[1])
	}
}

func TestJalJalrCallReturn(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpJAL, Rd: RegRA, Imm: 24},       // call func at 24
		{Op: OpADDI, Rd: 2, Rs1: 3, Imm: 1},   // after return: x2 = x3+1
		{Op: OpHALT},                          //
		{Op: OpLI, Rd: 3, Imm: 41},            // func: x3 = 41
		{Op: OpJALR, Rd: RegZero, Rs1: RegRA}, // ret
	})
	cpu := &CPU{}
	run(t, cpu, bus, 20)
	if cpu.Regs[2] != 42 {
		t.Errorf("x2 = %d, want 42", cpu.Regs[2])
	}
}

func TestECallTrap(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: RegA7, Imm: 77},
		{Op: OpECALL},
	})
	cpu := &CPU{}
	tr := run(t, cpu, bus, 10)
	if tr.Cause != CauseECallU || tr.Value != 77 {
		t.Fatalf("trap = %v", tr)
	}
	if tr.PC != InstrSize {
		t.Fatalf("trap pc = %#x, want the ECALL instruction", tr.PC)
	}
	// S-mode ECALL reports a different cause.
	cpu2 := &CPU{Mode: PrivS}
	bus.loadProgram(0, []Instr{{Op: OpECALL}})
	cpu2.PC = 0
	tr2 := cpu2.Step(bus)
	if tr2 == nil || tr2.Cause != CauseECallS {
		t.Fatalf("S-mode ecall trap = %v", tr2)
	}
}

func TestIllegalInstruction(t *testing.T) {
	bus := newFlatBus(4096)
	binary.LittleEndian.PutUint64(bus.mem[0:], uint64(opCount)+7)
	cpu := &CPU{}
	tr := cpu.Step(bus)
	if tr == nil || tr.Cause != CauseIllegal {
		t.Fatalf("trap = %v", tr)
	}
}

func TestMemFaultsBecomeTraps(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: 0x2000}, // beyond the 4K bus
		{Op: OpLD, Rd: 2, Rs1: 1},
	})
	cpu := &CPU{}
	tr := run(t, cpu, bus, 10)
	if tr.Cause != CauseLoadAccess || tr.Value != 0x2000 {
		t.Fatalf("trap = %v", tr)
	}
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: 0x801},
		{Op: OpLD, Rd: 2, Rs1: 1}, // misaligned
	})
	cpu = &CPU{}
	tr = run(t, cpu, bus, 10)
	if tr.Cause != CauseMisalignedLoad {
		t.Fatalf("trap = %v", tr)
	}
	bus.loadProgram(0, []Instr{
		{Op: OpLI, Rd: 1, Imm: 0x802},
		{Op: OpSW, Rs1: 1, Rs2: 0}, // misaligned store
	})
	cpu = &CPU{}
	tr = run(t, cpu, bus, 10)
	if tr.Cause != CauseMisalignedStore {
		t.Fatalf("trap = %v", tr)
	}
}

func TestMisalignedPC(t *testing.T) {
	cpu := &CPU{PC: 4}
	tr := cpu.Step(newFlatBus(64))
	if tr == nil || tr.Cause != CauseMisalignedFetch {
		t.Fatalf("trap = %v", tr)
	}
}

func TestFetchBeyondMemory(t *testing.T) {
	cpu := &CPU{PC: 1 << 20}
	tr := cpu.Step(newFlatBus(64))
	if tr == nil || tr.Cause != CauseFetchAccess {
		t.Fatalf("trap = %v", tr)
	}
}

func TestHaltSticky(t *testing.T) {
	bus := newFlatBus(64)
	bus.loadProgram(0, []Instr{{Op: OpHALT}})
	cpu := &CPU{}
	tr := cpu.Step(bus)
	if tr == nil || tr.Cause != CauseHalt {
		t.Fatalf("trap = %v", tr)
	}
	if tr2 := cpu.Step(bus); tr2 == nil || tr2.Cause != CauseHalt {
		t.Fatal("halted CPU stepped again")
	}
}

func TestRdcycleMonotonic(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpRDCYCLE, Rd: 1},
		{Op: OpNOP},
		{Op: OpNOP},
		{Op: OpRDCYCLE, Rd: 2},
		{Op: OpHALT},
	})
	cpu := &CPU{}
	run(t, cpu, bus, 10)
	if cpu.Regs[2] <= cpu.Regs[1] {
		t.Fatalf("cycles not monotonic: %d then %d", cpu.Regs[1], cpu.Regs[2])
	}
}

func TestTrapLeavesPCAtFault(t *testing.T) {
	bus := newFlatBus(4096)
	bus.loadProgram(0, []Instr{
		{Op: OpNOP},
		{Op: OpEBREAK},
	})
	cpu := &CPU{}
	tr := run(t, cpu, bus, 10)
	if tr.Cause != CauseBreakpoint || tr.PC != InstrSize || cpu.PC != InstrSize {
		t.Fatalf("trap=%v cpu.PC=%#x", tr, cpu.PC)
	}
}

func TestCauseClassifiers(t *testing.T) {
	if !CauseTimerInterrupt.IsInterrupt() || CauseECallU.IsInterrupt() || CauseHalt.IsInterrupt() {
		t.Error("IsInterrupt wrong")
	}
	if !CauseLoadPageFault.IsPageFault() || CauseLoadAccess.IsPageFault() {
		t.Error("IsPageFault wrong")
	}
}
