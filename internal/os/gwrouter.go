package os

// Router picks which worker serves the next chunk of requests. It is
// the seam the fleet layer drives (DESIGN.md §12): the single-machine
// gateway defaults to RoundRobin, while a fleet shard plugs in
// KeyAffinity so one session's requests serialize through one worker's
// rings. Response matching — FIFO per worker under the monitor's
// sender stamp — stays in the gateway core and is shared by every
// router; only the selection policy varies.
type Router interface {
	// Pick returns the index of the worker that should take the next
	// chunk, whose first routing key is key, or -1 when no worker has
	// request-ring space left (the gateway then runs a scheduler wave
	// to drain responses and retries). n is the worker count; space
	// reports a worker's free request-ring slots.
	Pick(key uint64, n int, space func(int) int) int
}

// RoundRobin rotates chunks across the workers, skipping full rings —
// the original single-machine gateway policy. The cursor persists
// across Process calls, so sustained load keeps rotating instead of
// restarting at worker 0 every batch.
type RoundRobin struct {
	next int
}

// Pick scans from the cursor for a worker with ring space.
func (r *RoundRobin) Pick(_ uint64, n int, space func(int) int) int {
	for scanned := 0; scanned < n; scanned++ {
		i := r.next % n
		r.next++
		if space(i) > 0 {
			return i
		}
	}
	return -1
}

// KeyAffinity pins a routing key to its home worker (key mod n), so a
// session's requests stay on one worker's rings — what a fleet shard
// wants for cache locality and per-session ordering. When the home
// ring is full the key spills to the roomiest worker rather than
// stalling the whole batch behind one hot session.
type KeyAffinity struct{}

// Pick returns the key's home worker, or the roomiest worker when the
// home ring is full.
func (KeyAffinity) Pick(key uint64, n int, space func(int) int) int {
	home := int(key % uint64(n))
	if space(home) > 0 {
		return home
	}
	best, bestSpace := -1, 0
	for i := 0; i < n; i++ {
		if s := space(i); s > bestSpace {
			best, bestSpace = i, s
		}
	}
	return best
}
