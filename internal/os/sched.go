package os

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/isa"
	"sanctorum/internal/sm/api"
)

// This file is the untrusted OS's thread scheduler: the resource-
// management half the paper explicitly leaves outside the monitor
// (§V: the SM verifies decisions, the OS makes them). It timeshares N
// enclave threads across M cores with timer preemption, entering and
// re-entering through the monitor's API and retrying whenever a
// transaction fails with ErrRetry. Under the machine scheduler's
// deterministic mode the interleaving (and everything downstream) is
// reproducible; under parallel mode the cores genuinely run
// concurrently and throughput scales with host CPUs.

// Task names one enclave thread to run to completion.
type Task struct {
	EID uint64
	TID uint64
	// MaxSteps bounds the task's total retired instructions; once
	// exceeded the scheduler preempts the thread off its core and
	// reports StopMaxSteps. 0 means no bound (the thread must exit).
	MaxSteps int
}

// TaskResult reports one finished task.
type TaskResult struct {
	Task        Task
	Steps       int                // instructions retired across all slices
	Preemptions int                // timer/forced AEXes suffered
	ExitValue   uint64             // a0 the enclave passed to exit_enclave
	Reason      machine.StopReason // how the final slice ended
	TrapCause   isa.Cause          // final trap delivered to the OS
	Err         error              // enter failures other than retry

	submitIdx int // submission order, for stable result ordering
}

// SchedConfig configures the OS scheduler.
type SchedConfig struct {
	// Mode selects deterministic round-robin interleaving or
	// goroutine-per-core parallel execution (machine.Scheduler).
	Mode machine.SchedMode
	// QuantumCycles arms the per-core timer on every enclave entry, so
	// a thread is preempted (AEX) after that many modeled cycles and
	// the next runnable task gets the core. 0 disables preemption.
	QuantumCycles uint64
	// SliceSteps bounds host instructions per drive slice (the
	// deterministic interleave granularity). Default 50000.
	SliceSteps int
	// Cores lists the cores to schedule on. Default: all cores.
	Cores []int
}

// Scheduler timeshares enclave threads over cores. Create with
// OS.NewScheduler; drive with RunAll or Serve.
type Scheduler struct {
	o   *OS
	cfg SchedConfig

	mu        sync.Mutex
	queue     []*schedTask // runnable, not on any core
	current   map[int]*schedTask
	results   []TaskResult
	remaining int         // submitted but unfinished tasks
	feed      <-chan Task // Serve's live submission channel
	accepting bool        // feed may still yield tasks
	nextIdx   int         // submission order, for stable results

	// wake parks idle parallel workers: one buffered token, sent by
	// whatever makes work available (enqueue, requeue, finish) and by
	// woken workers that observe more work or the drained state, so
	// wakeups chain instead of being lost. Deterministic mode never
	// parks (a single goroutine drives every core).
	wake chan struct{}
}

type schedTask struct {
	idx     int
	res     TaskResult
	bounded bool // Task.MaxSteps was set
	budget  int  // remaining step budget when bounded
	kill    bool // budget exhausted: force off the core at next slice
}

// NewScheduler returns a scheduler over this OS instance. Creating a
// parallel-mode scheduler latches the machine into concurrent
// operation immediately, so OS goroutines that will race the cores
// (region lifecycle churn under load) are safe from the start.
func (o *OS) NewScheduler(cfg SchedConfig) *Scheduler {
	if cfg.SliceSteps <= 0 {
		cfg.SliceSteps = 50_000
	}
	if len(cfg.Cores) == 0 {
		for i := range o.M.Cores {
			cfg.Cores = append(cfg.Cores, i)
		}
	}
	if cfg.Mode == machine.SchedParallel {
		o.M.SetConcurrent(true)
	}
	return &Scheduler{
		o:       o,
		cfg:     cfg,
		current: make(map[int]*schedTask),
		wake:    make(chan struct{}, 1),
	}
}

// signal makes one wake token available without blocking.
func (s *Scheduler) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Retries reports how many monitor transactions through this OS's
// smcall client failed with api.ErrRetry — the §V-A contention signal.
// The counter lives in the client (the one place the retry discipline
// is implemented), so it covers the scheduler's enter_enclave attempts
// and every other contended call the OS issued. Deterministic mode
// never contends; parallel mode counts real cross-hart collisions.
func (s *Scheduler) Retries() uint64 { return s.o.SM.Retries() }

// RunAll timeshares the given tasks across the configured cores until
// every task has finished, and returns results in submission order.
func (s *Scheduler) RunAll(tasks []Task) []TaskResult {
	s.mu.Lock()
	for _, t := range tasks {
		s.enqueueLocked(t)
	}
	s.accepting = false
	s.mu.Unlock()
	return s.drive()
}

// Serve consumes tasks from a channel until it is closed and all
// accepted tasks have finished — the scheduler's long-running "system
// under load" mode. Results come back ordered by admission; in
// parallel mode two tasks received nearly simultaneously by different
// idle workers may be admitted in either order.
func (s *Scheduler) Serve(tasks <-chan Task) []TaskResult {
	s.mu.Lock()
	s.feed = tasks
	s.accepting = true
	s.mu.Unlock()
	return s.drive()
}

func (s *Scheduler) enqueueLocked(t Task) {
	st := &schedTask{idx: s.nextIdx, res: TaskResult{Task: t}}
	if t.MaxSteps > 0 {
		st.bounded = true
		st.budget = t.MaxSteps
	}
	s.nextIdx++
	s.remaining++
	s.queue = append(s.queue, st)
	s.signal()
}

func (s *Scheduler) drive() []TaskResult {
	machine.NewScheduler(s.o.M, s.cfg.Mode).Drive(s.cfg.Cores, s.slice)
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]TaskResult(nil), s.results...)
	sort.Slice(out, func(i, j int) bool { return out[i].submitIdx < out[j].submitIdx })
	return out
}

// slice performs one unit of scheduling work on coreID; false means the
// scheduler is drained and this core can stop.
func (s *Scheduler) slice(coreID int) bool {
	t := s.takeFor(coreID)
	if t == nil {
		s.mu.Lock()
		done := s.remaining == 0 && !s.accepting
		feed, accepting := s.feed, s.accepting
		s.mu.Unlock()
		if done {
			s.signal() // chain the wakeup so every parked sibling drains too
			return false
		}
		if s.cfg.Mode == machine.SchedParallel {
			s.park(feed, accepting)
			return true
		}
		// Deterministic mode is one goroutine round-robining every
		// core; it must not block while work is in flight — what it is
		// "waiting" for sits on another core of this same loop. But
		// when nothing is in flight at all and the feed is still open,
		// a blocking receive is provably safe and avoids spinning the
		// host CPU between Serve submissions.
		s.mu.Lock()
		quiescent := s.remaining == 0 && len(s.queue) == 0 && s.accepting
		s.mu.Unlock()
		if quiescent && feed != nil {
			task, ok := <-feed
			s.mu.Lock()
			if ok {
				s.enqueueLocked(task)
			} else {
				s.accepting = false
			}
			s.mu.Unlock()
			return true
		}
		runtime.Gosched()
		return true
	}
	s.runSlice(coreID, t)
	return true
}

// park blocks an idle parallel worker until work may exist again: a
// wake token (enqueue, requeue, finish, drain) or a Serve submission.
// Without parking, cores with no runnable task would spin at full host
// speed — wasting a host CPU per idle core and distorting the scaling
// numbers the benchmarks measure.
func (s *Scheduler) park(feed <-chan Task, accepting bool) {
	if !accepting {
		feed = nil // a nil channel never selects: wait on wake alone
	}
	select {
	case task, ok := <-feed:
		s.mu.Lock()
		if ok {
			s.enqueueLocked(task)
		} else {
			s.accepting = false
		}
		s.mu.Unlock()
		s.signal()
	case <-s.wake:
	}
}

// takeFor returns the task bound to the core (mid-execution from an
// earlier slice), or pops and enters the next runnable task. nil means
// the core has nothing to do right now.
func (s *Scheduler) takeFor(coreID int) *schedTask {
	s.mu.Lock()
	if t := s.current[coreID]; t != nil {
		s.mu.Unlock()
		return t
	}
	s.pollFeedLocked()
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return nil
	}
	t := s.queue[0]
	s.queue = s.queue[1:]
	if len(s.queue) > 0 {
		// More work remains: hand the wakeup on so a parked sibling
		// picks it up (a single token would otherwise serialize wakes).
		s.signal()
	}
	s.mu.Unlock()

	st := s.o.EnterEnclave(coreID, t.res.Task.EID, t.res.Task.TID)
	if st == api.ErrRetry {
		// Another hart's transaction holds the enclave, the thread or
		// the core; the client counted the collision — put the task
		// back and try again next slice (§V-A). Requeueing rather than
		// spinning in the client keeps the core available for other
		// runnable tasks.
		s.requeue(t)
		runtime.Gosched()
		return nil
	}
	if st != api.OK {
		t.res.Err = fmt.Errorf("os: enter_enclave(core=%d, eid=%#x, tid=%#x): %v",
			coreID, t.res.Task.EID, t.res.Task.TID, st)
		s.finish(t)
		return nil
	}
	if s.cfg.QuantumCycles > 0 {
		c := s.o.M.Cores[coreID]
		c.TimerCmp = c.CPU.Cycles + s.cfg.QuantumCycles
	}
	s.mu.Lock()
	s.current[coreID] = t
	s.mu.Unlock()
	return t
}

// pollFeedLocked moves any ready Serve submissions onto the run queue.
func (s *Scheduler) pollFeedLocked() {
	if !s.accepting || s.feed == nil {
		return
	}
	for {
		select {
		case t, ok := <-s.feed:
			if !ok {
				s.accepting = false
				return
			}
			s.enqueueLocked(t)
		default:
			return
		}
	}
}

// runSlice drives the task currently on coreID for one bounded slice
// and services however the machine hands the core back.
func (s *Scheduler) runSlice(coreID int, t *schedTask) {
	if t.kill {
		// Budget exhausted in an earlier slice: preempt via IPI; the
		// core takes the external interrupt at its next instruction
		// boundary and the monitor performs the AEX.
		s.o.M.InterruptCore(coreID)
	}
	res, err := s.o.M.Run(coreID, s.cfg.SliceSteps)
	t.res.Steps += res.Steps
	if t.bounded {
		t.budget -= res.Steps
	}
	if err != nil {
		t.res.Err = err
		s.unbind(coreID)
		s.finish(t)
		return
	}
	if res.Reason == machine.StopMaxSteps {
		// Still on the core; if the task ran out of budget, force it
		// off on the next slice.
		if t.bounded && t.budget <= 0 {
			t.kill = true
		}
		return
	}
	// The monitor handed the core back to the OS. Disarm any quantum
	// timer still pending so it cannot leak into the next task's slice.
	s.o.M.Cores[coreID].TimerCmp = 0
	s.unbind(coreID)
	t.res.Reason = res.Reason
	if res.Trap != nil {
		t.res.TrapCause = res.Trap.Cause
	}
	if res.Reason == machine.StopReturnToOS && res.Trap != nil && res.Trap.Cause.IsInterrupt() {
		// Timer or IPI preemption: the monitor saved an AEX context;
		// the thread is runnable again (re-entry resumes via
		// resume_aex, Fig 4).
		t.res.Preemptions++
		if t.kill || (t.bounded && t.budget <= 0) {
			t.res.Reason = machine.StopMaxSteps
			s.finish(t)
			return
		}
		s.requeue(t)
		return
	}
	// Exit, fault delegation, or halt: the task is done. exit_enclave's
	// status was placed in a0 for the OS by the monitor.
	t.res.ExitValue = s.o.M.Cores[coreID].CPU.Reg(isa.RegA0)
	s.finish(t)
}

func (s *Scheduler) unbind(coreID int) {
	s.mu.Lock()
	delete(s.current, coreID)
	s.mu.Unlock()
}

func (s *Scheduler) requeue(t *schedTask) {
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
	s.signal()
}

func (s *Scheduler) finish(t *schedTask) {
	s.mu.Lock()
	t.res.submitIdx = t.idx
	s.results = append(s.results, t.res)
	s.remaining--
	s.mu.Unlock()
	// Wake a parked worker: it either finds new state to act on or
	// observes the drained scheduler and chains the shutdown wake.
	s.signal()
}
