package os

import (
	"fmt"

	"sanctorum/internal/sm/api"
)

// Pool is the OS-side enclave pool manager over the monitor's
// snapshot/clone calls (0x30–0x32): one template enclave is built and
// measured the slow way, frozen into a snapshot, and request-serving
// workers are forked from it copy-on-write in O(page-table pages) —
// the near-zero cold start a serving system wants. Workers recycle on
// exit: their enclave is deleted, their regions cleaned, and both
// regions and metadata pages return to the pool for the next clone.
//
// The pool is untrusted resource management, exactly like the rest of
// this package: every operation travels through the monitor's call
// ABI, and nothing the pool does can violate the measurement-identity
// or isolation rules (the adversary battery tries).
type Pool struct {
	o *OS

	// Template is the built template enclave; it stays parked (never
	// scheduled) while the snapshot is live.
	Template *BuiltEnclave
	// SnapID names the monitor-side snapshot.
	SnapID uint64

	evBase, evMask uint64
	nThreads       int
	perClone       int
	templRegions   []int

	// freeRegions are OS-owned (or cleaned) regions available to back
	// clones: page tables plus copy-on-write copies.
	freeRegions []int

	// freeTIDBases are recycled clone thread-id bases (each a run of
	// nThreads contiguous metadata pages). AllocMetaPages can only bump
	// — it never coalesces freed singles — so recycled workers reuse
	// whole bases here instead of leaking nThreads pages per cycle.
	freeTIDBases []uint64

	// Clones and Recycled count pool activity for reporting.
	Clones   int
	Recycled int
}

// Worker is one cloned enclave handed out by the pool.
type Worker struct {
	EID      uint64
	TIDs     []uint64
	SharedPA uint64 // this worker's untrusted buffer (0 = template's)
	regions  []int
}

// NewPool builds the template from spec, snapshots it, and readies
// cloneRegions (OS-owned regions, perClone consumed per worker) for
// forked workers. perClone <= 0 defaults to 1.
func NewPool(o *OS, spec *EnclaveSpec, cloneRegions []int, perClone int) (*Pool, error) {
	if perClone <= 0 {
		perClone = 1
	}
	built, err := o.BuildEnclave(spec)
	if err != nil {
		return nil, fmt.Errorf("os: pool template build: %w", err)
	}
	snapID, err := o.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if err := o.SM.SnapshotEnclave(built.EID, snapID); err != nil {
		return nil, fmt.Errorf("os: pool snapshot: %w", err)
	}
	return &Pool{
		o:            o,
		Template:     built,
		SnapID:       snapID,
		evBase:       spec.EvBase,
		evMask:       spec.EvMask,
		nThreads:     len(spec.Threads),
		perClone:     perClone,
		templRegions: append([]int(nil), spec.Regions...),
		freeRegions:  append([]int(nil), cloneRegions...),
	}, nil
}

// FreeWorkers reports how many more workers the pool can back with its
// remaining regions.
func (p *Pool) FreeWorkers() int { return len(p.freeRegions) / p.perClone }

// Acquire forks a worker from the template. sharedPA, when non-zero,
// becomes the worker's private untrusted buffer (it must be an
// OS-owned page); zero aliases the template's buffer. The whole fork
// travels as one batched submission — create, grants, clone — so the
// monitor's contention cut applies once.
func (p *Pool) Acquire(sharedPA uint64) (*Worker, error) {
	if len(p.freeRegions) < p.perClone {
		return nil, fmt.Errorf("os: pool out of clone regions")
	}
	regions := append([]int(nil), p.freeRegions[:p.perClone]...)
	eid, err := p.o.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	var tidBase uint64
	if p.nThreads > 0 {
		if n := len(p.freeTIDBases); n > 0 {
			tidBase = p.freeTIDBases[n-1]
			p.freeTIDBases = p.freeTIDBases[:n-1]
		} else if tidBase, err = p.o.AllocMetaPages(p.nThreads); err != nil {
			p.o.ReleaseMetaPage(eid)
			return nil, err
		}
	}

	b := &batch{}
	b.add("create_enclave (clone)",
		api.OSRequest(api.CallCreateEnclave, eid, p.evBase, p.evMask))
	for _, r := range regions {
		b.add(fmt.Sprintf("grant region %d (clone)", r),
			api.OSRequest(api.CallGrantRegion, uint64(r), eid))
	}
	b.add("clone_enclave",
		api.OSRequest(api.CallCloneEnclave, eid, p.SnapID, tidBase, sharedPA))
	if err := b.run(p.o); err != nil {
		// Unwind a partial fork so the pool stays usable: the shell may
		// exist and may own some of the regions (deleting it blocks
		// them; cleaning makes them grantable again). The regions were
		// never removed from freeRegions, and the metadata pages return
		// to their allocators. Best-effort — the original error is the
		// one reported.
		if delErr := p.o.SM.DeleteEnclave(eid); delErr == nil {
			for _, r := range regions {
				if st, _, infoErr := p.o.SM.RegionInfo(r); infoErr == nil && st == api.RegionBlocked {
					p.o.SM.CleanRegion(r)
				}
			}
		}
		p.o.ReleaseMetaPage(eid)
		if p.nThreads > 0 {
			p.freeTIDBases = append(p.freeTIDBases, tidBase)
		}
		return nil, err
	}
	p.freeRegions = p.freeRegions[p.perClone:]

	w := &Worker{EID: eid, SharedPA: sharedPA, regions: regions}
	for i := 0; i < p.nThreads; i++ {
		w.TIDs = append(w.TIDs, tidBase+uint64(i)*4096)
	}
	p.Clones++
	return w, nil
}

// Release recycles a worker: delete its enclave (threads revert to the
// available pool and are deleted), clean its regions, and return
// regions and metadata pages for reuse.
func (p *Pool) Release(w *Worker) error {
	if err := p.o.SM.DeleteEnclave(w.EID); err != nil {
		return fmt.Errorf("os: pool delete clone: %w", err)
	}
	for _, tid := range w.TIDs {
		if err := p.o.SM.DeleteThread(tid); err != nil {
			return fmt.Errorf("os: pool delete clone thread: %w", err)
		}
	}
	// The whole contiguous tid run goes back to the pool as one base
	// (AllocMetaPages cannot reuse freed singles); the eid page returns
	// to the OS allocator.
	if len(w.TIDs) > 0 {
		p.freeTIDBases = append(p.freeTIDBases, w.TIDs[0])
	}
	p.o.ReleaseMetaPage(w.EID)
	// The clone's regions blocked at deletion; clean them (scrub, cache
	// flush, shootdown) so the next clone starts from zeroed memory.
	for _, r := range w.regions {
		if err := p.o.SM.CleanRegion(r); err != nil {
			return fmt.Errorf("os: pool clean region %d: %w", r, err)
		}
	}
	p.freeRegions = append(p.freeRegions, w.regions...)
	p.Recycled++
	return nil
}

// Close releases the snapshot and tears the template down, returning
// its regions cleaned to the OS. Outstanding workers must have been
// released first.
func (p *Pool) Close() error {
	if err := p.o.SM.ReleaseSnapshot(p.SnapID); err != nil {
		return fmt.Errorf("os: pool release snapshot: %w", err)
	}
	p.o.ReleaseMetaPage(p.SnapID)
	if err := p.o.SM.DeleteEnclave(p.Template.EID); err != nil {
		return fmt.Errorf("os: pool delete template: %w", err)
	}
	for _, tid := range p.Template.TIDs {
		if err := p.o.SM.DeleteThread(tid); err != nil {
			return fmt.Errorf("os: pool delete template thread: %w", err)
		}
		p.o.ReleaseMetaPage(tid)
	}
	p.o.ReleaseMetaPage(p.Template.EID)
	// The template's regions blocked at deletion; clean them so they
	// come back Available with no enclave data (and, in tests, with
	// every page refcount back to zero).
	for _, r := range p.templRegions {
		if err := p.o.SM.CleanRegion(r); err != nil {
			return fmt.Errorf("os: pool clean template region %d: %w", r, err)
		}
	}
	return nil
}
