package os

import (
	"bytes"
	"errors"
	"testing"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/platform/baseline"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
)

// newSystem boots machine + monitor + OS with region 0 as the kernel
// region and the top regions for SM image and metadata, mirroring the
// facade's layout. The OS talks to the monitor exclusively through its
// smcall client (o.SM), so these tests exercise the unified ABI.
func newSystem(t *testing.T) (*machine.Machine, *sm.Monitor, *OS) {
	t.Helper()
	cfg := machine.DefaultConfig(machine.IsolationNone)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mfr := boot.NewManufacturer("acme", []byte("seed"))
	dev := mfr.Provision("dev", []byte("root-secret"))
	id, err := dev.Boot([]byte("os test image"))
	if err != nil {
		t.Fatal(err)
	}
	smRegion := cfg.DRAM.RegionCount - 1
	metaRegion := cfg.DRAM.RegionCount - 2
	mon, err := sm.New(sm.Config{
		Machine:   m,
		Platform:  baseline.New(),
		Identity:  id,
		SMRegions: []int{smRegion},
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(m, mon, 0, metaRegion)
	if err != nil {
		t.Fatal(err)
	}
	return m, mon, o
}

func TestOwnedAccessRejectsForeignRegions(t *testing.T) {
	m, _, o := newSystem(t)
	_ = m

	// The SM region is not ours.
	smBase := o.M.DRAM.Base(o.M.DRAM.RegionCount - 1)
	if err := o.WriteOwned(smBase, []byte{1}); err == nil {
		t.Fatal("write into the SM region succeeded")
	}
	if _, err := o.ReadOwned(smBase, 8); err == nil {
		t.Fatal("read from the SM region succeeded")
	}
	// A blocked region stops being ours mid-lifecycle.
	r := 5
	base := o.M.DRAM.Base(r)
	if err := o.WriteOwned(base, []byte{1, 2, 3}); err != nil {
		t.Fatalf("write to own region: %v", err)
	}
	if err := o.SM.BlockRegion(r); err != nil {
		t.Fatalf("block: %v", err)
	}
	if err := o.WriteOwned(base, []byte{1}); err == nil {
		t.Fatal("write into a blocked region succeeded")
	}
	if _, err := o.ReadOwned(base, 1); err == nil {
		t.Fatal("read from a blocked region succeeded")
	}
}

// TestOwnedAccessOverflow is the regression test for the unsigned
// end-of-range wrap: pa near 2^64 must be rejected outright, not wrap
// into a small (and OS-owned) address range.
func TestOwnedAccessOverflow(t *testing.T) {
	_, _, o := newSystem(t)
	huge := ^uint64(0) - 3 // pa + len - 1 wraps for len ≥ 5
	if err := o.WriteOwned(huge, make([]byte, 16)); err == nil {
		t.Fatal("wrapping write passed the ownership check")
	}
	if _, err := o.ReadOwned(huge, 16); err == nil {
		t.Fatal("wrapping read passed the ownership check")
	}
	if _, err := o.ReadOwned(0, -1); err == nil {
		t.Fatal("negative-length read succeeded")
	}
}

func TestMetaPageReuse(t *testing.T) {
	_, _, o := newSystem(t)
	// Exhaust two pages, release one, and require the allocator to
	// hand the released page back before advancing the bump pointer.
	p1, err := o.AllocMetaPage()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := o.AllocMetaPage()
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("allocator returned %#x twice", p1)
	}
	// Round-trip through the monitor: create and delete an enclave at
	// p1, then reuse the page.
	if err := o.SM.CreateEnclave(p1, 0x4000000000, ^uint64(1<<21-1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := o.SM.DeleteEnclave(p1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	o.ReleaseMetaPage(p1)
	p3, err := o.AllocMetaPage()
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatalf("allocator ignored the released page: got %#x want %#x", p3, p1)
	}
	if err := o.SM.CreateEnclave(p3, 0x4000000000, ^uint64(1<<21-1)); err != nil {
		t.Fatalf("re-create on reused metadata page: %v", err)
	}
}

// TestABIVersionAndFieldsThroughClient probes the version call and a
// byte-returning field through the register-convention ABI (the bytes
// travel via OS-owned staging memory).
func TestABIVersionAndFieldsThroughClient(t *testing.T) {
	_, mon, o := newSystem(t)
	v, err := o.ABIVersion()
	if err != nil {
		t.Fatalf("abi version: %v", err)
	}
	if v != api.Version || v>>16 != api.VersionMajor {
		t.Fatalf("version %#x, want %#x", v, uint64(api.Version))
	}
	meas, err := o.GetField(api.FieldSMMeasurement)
	if err != nil {
		t.Fatalf("get_field: %v", err)
	}
	if want := mon.Identity().Measurement; !bytes.Equal(meas, want[:]) {
		t.Fatalf("measurement through ABI = %x, want %x", meas, want)
	}
	// A too-small output bound must be refused, not truncated.
	stage, err := o.StagePage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.SM.GetField(api.FieldSMMeasurement, stage, 16); !errors.Is(err, api.ErrInvalidValue) {
		t.Fatalf("short get_field bound: %v", err)
	}
	// Enclave-only fields stay refused for the OS domain.
	if _, err := o.GetField(api.FieldEnclaveMeasurement); !errors.Is(err, api.ErrUnauthorized) {
		t.Fatalf("enclave field for OS: %v", err)
	}
}

// TestBuildEnclaveMeasurementMatchesReplay drives the whole loader and
// checks the monitor's measurement against the Go-side replay — the
// verifier computation of §VI-A.
func TestBuildEnclaveMeasurementMatchesReplay(t *testing.T) {
	_, _, o := newSystem(t)
	evBase := uint64(0x4000000000)
	evMask := ^uint64(1<<21 - 1)
	code := bytes.Repeat([]byte{0x13, 0, 0, 0, 0, 0, 0, 0}, 16) // NOPs
	spec := &EnclaveSpec{
		EvBase:  evBase,
		EvMask:  evMask,
		Regions: []int{3},
		Pages: []EnclavePage{
			{VA: evBase, Perms: pt.R | pt.X, Data: code},
			{VA: evBase + 0x1000, Perms: pt.R | pt.W, Data: []byte("data")},
		},
		Threads: []ThreadSpec{{EntryVA: evBase, StackVA: evBase + 0x2000}},
	}
	built, err := o.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	if built.Measurement != ExpectedMeasurement(spec) {
		t.Fatal("monitor measurement does not match the replayed transcript")
	}
	if len(built.TIDs) != 1 {
		t.Fatalf("built %d threads", len(built.TIDs))
	}
}

// TestLoaderRejectsOversizedPage covers the loader's own validation.
func TestLoaderRejectsOversizedPage(t *testing.T) {
	_, _, o := newSystem(t)
	spec := &EnclaveSpec{
		EvBase:  0x4000000000,
		EvMask:  ^uint64(1<<21 - 1),
		Regions: []int{3},
		Pages: []EnclavePage{
			{VA: 0x4000000000, Perms: pt.R | pt.X, Data: make([]byte, mem.PageSize+1)},
		},
	}
	if _, err := o.BuildEnclave(spec); err == nil {
		t.Fatal("oversized page accepted")
	}
}
