package os

import (
	"fmt"
	"sort"

	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
)

// EnclavePage is one page of enclave initial state.
type EnclavePage struct {
	VA    uint64
	Perms uint64 // pt.R/pt.W/pt.X
	Data  []byte // at most a page; zero-padded
}

// ThreadSpec describes one enclave thread to load.
type ThreadSpec struct {
	EntryVA uint64
	StackVA uint64 // initial stack pointer
}

// SharedMapping maps an OS physical page into the enclave's tables
// outside evrange (Keystone-style untrusted buffer).
type SharedMapping struct {
	VA uint64
	PA uint64
}

// EnclaveSpec is everything needed to build (and to predict the
// measurement of) an enclave.
type EnclaveSpec struct {
	EvBase  uint64
	EvMask  uint64
	Regions []int // DRAM regions to grant before loading
	Pages   []EnclavePage
	Shared  []SharedMapping
	Threads []ThreadSpec
}

// TableAlloc is one page-table allocation in canonical order.
type TableAlloc struct {
	VA    uint64
	Level int
}

// TablePlan computes the canonical page-table allocation sequence for a
// set of mapped VAs: the root first, then level-1 tables by ascending
// normalized VA, then level-0 tables likewise. Builder and measurement
// replayer share this order, so predicted and actual measurements agree.
func TablePlan(vas []uint64) []TableAlloc {
	plan := []TableAlloc{{VA: 0, Level: pt.Levels - 1}}
	for level := pt.Levels - 2; level >= 0; level-- {
		seen := map[uint64]bool{}
		var prefixes []uint64
		for _, va := range vas {
			n := sm.NormalizeTableVA(va, level)
			if !seen[n] {
				seen[n] = true
				prefixes = append(prefixes, n)
			}
		}
		sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
		for _, p := range prefixes {
			plan = append(plan, TableAlloc{VA: p, Level: level})
		}
	}
	return plan
}

// BuiltEnclave is the result of BuildEnclave.
type BuiltEnclave struct {
	EID         uint64
	TIDs        []uint64
	Measurement [32]byte
}

// batch is a labelled ABI request sequence: the labels keep loader
// errors as descriptive as the direct calls they replaced.
type batch struct {
	labels []string
	reqs   []api.Request
}

func (b *batch) add(label string, req api.Request) {
	b.labels = append(b.labels, label)
	b.reqs = append(b.reqs, req)
}

// run submits the sequence through the client's batched path and
// converts the first failed element into an error.
func (b *batch) run(o *OS) error {
	if len(b.reqs) == 0 {
		return nil
	}
	resps, err := o.SM.Batch(b.reqs)
	if err != nil {
		return fmt.Errorf("os: batched monitor call: %w", err)
	}
	for i, resp := range resps {
		if resp.Status != api.OK {
			return fmt.Errorf("os: %s: %w", b.labels[i], resp.Status)
		}
	}
	return nil
}

// BuildEnclave drives the monitor's loading API (Fig 3) end to end:
// create, grant, allocate tables, load pages, map shared windows, load
// threads, init. The call sequence is canonical so that
// ExpectedMeasurement predicts the result exactly. Calls that need no
// inter-call staging travel as batched submissions, which lets the
// monitor hold the enclave's transaction lock across the sequence
// instead of re-acquiring it per call; page loads are staged through
// the kernel's staging page one at a time, exactly as an S-mode kernel
// would reuse a bounce buffer.
func (o *OS) BuildEnclave(spec *EnclaveSpec) (*BuiltEnclave, error) {
	eid, err := o.AllocMetaPage()
	if err != nil {
		return nil, err
	}

	var vas []uint64
	for _, p := range spec.Pages {
		vas = append(vas, p.VA)
	}
	for _, s := range spec.Shared {
		vas = append(vas, s.VA)
	}

	// Phase 1 — create, grants, page tables: pure register calls, one
	// batch.
	setup := &batch{}
	setup.add("create_enclave",
		api.OSRequest(api.CallCreateEnclave, eid, spec.EvBase, spec.EvMask))
	for _, r := range spec.Regions {
		setup.add(fmt.Sprintf("grant region %d", r),
			api.OSRequest(api.CallGrantRegion, uint64(r), eid))
	}
	for _, ta := range TablePlan(vas) {
		setup.add(fmt.Sprintf("allocate_page_table(va=%#x, level=%d)", ta.VA, ta.Level),
			api.OSRequest(api.CallAllocPageTable, eid, ta.VA, uint64(ta.Level)))
	}
	if err := setup.run(o); err != nil {
		return nil, err
	}

	// Phase 2 — stage each page in kernel memory and load it.
	stagePA, err := o.StagePage()
	if err != nil {
		return nil, err
	}
	for _, p := range spec.Pages {
		if len(p.Data) > mem.PageSize {
			return nil, fmt.Errorf("os: page at %#x larger than a page", p.VA)
		}
		var buf [mem.PageSize]byte
		copy(buf[:], p.Data)
		if err := o.WriteOwned(stagePA, buf[:]); err != nil {
			return nil, err
		}
		if err := o.SM.LoadPage(eid, p.VA, stagePA, p.Perms); err != nil {
			return nil, fmt.Errorf("os: load_page(va=%#x): %w", p.VA, err)
		}
	}

	// Phase 3 — shared windows and threads. Batched, but sealed
	// separately: a batch reports the first failure only after running
	// every element, and init_enclave must never execute past a failed
	// load — sealing a partially built enclave would finalize a bogus
	// measurement instead of leaving the enclave Loading (and
	// deletable).
	built := &BuiltEnclave{EID: eid}
	contents := &batch{}
	for _, s := range spec.Shared {
		contents.add(fmt.Sprintf("map_shared(va=%#x)", s.VA),
			api.OSRequest(api.CallMapShared, eid, s.VA, s.PA))
	}
	for _, t := range spec.Threads {
		tid, err := o.AllocMetaPage()
		if err != nil {
			return nil, err
		}
		contents.add(fmt.Sprintf("load_thread(entry=%#x)", t.EntryVA),
			api.OSRequest(api.CallLoadThread, eid, tid, t.EntryVA, t.StackVA))
		built.TIDs = append(built.TIDs, tid)
	}
	if err := contents.run(o); err != nil {
		return nil, err
	}

	// Phase 4 — seal and read the measurement back through OS memory:
	// the monitor writes it to the staging page in the same batch.
	seal := &batch{}
	seal.add("init_enclave", api.OSRequest(api.CallInitEnclave, eid))
	seal.add("enclave_status", api.OSRequest(api.CallEnclaveStatus, eid, stagePA))
	if err := seal.run(o); err != nil {
		return nil, err
	}

	meas, err := o.ReadOwned(stagePA, len(built.Measurement))
	if err != nil {
		return nil, fmt.Errorf("os: reading measurement: %w", err)
	}
	copy(built.Measurement[:], meas)
	return built, nil
}

// ExpectedMeasurement replays the measurement transcript for a spec
// without touching a machine: the computation a remote verifier (or the
// author of a signing-enclave policy) performs to learn what a
// correctly-loaded enclave must measure as (§VI-A).
func ExpectedMeasurement(spec *EnclaveSpec) [32]byte {
	m := sm.NewMeasurement()
	m.ExtendCreate(spec.EvBase, spec.EvMask)
	var vas []uint64
	for _, p := range spec.Pages {
		vas = append(vas, p.VA)
	}
	for _, s := range spec.Shared {
		vas = append(vas, s.VA)
	}
	for _, ta := range TablePlan(vas) {
		m.ExtendPageTable(sm.NormalizeTableVA(ta.VA, ta.Level), ta.Level)
	}
	for _, p := range spec.Pages {
		var buf [mem.PageSize]byte
		copy(buf[:], p.Data)
		m.ExtendPage(p.VA, p.Perms, buf[:])
	}
	for _, s := range spec.Shared {
		m.ExtendShared(s.VA)
	}
	for _, t := range spec.Threads {
		m.ExtendThread(t.EntryVA, t.StackVA)
	}
	return m.Finalize()
}
