package os

import (
	"fmt"
	"sort"

	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
)

// EnclavePage is one page of enclave initial state.
type EnclavePage struct {
	VA    uint64
	Perms uint64 // pt.R/pt.W/pt.X
	Data  []byte // at most a page; zero-padded
}

// ThreadSpec describes one enclave thread to load.
type ThreadSpec struct {
	EntryVA uint64
	StackVA uint64 // initial stack pointer
}

// SharedMapping maps an OS physical page into the enclave's tables
// outside evrange (Keystone-style untrusted buffer).
type SharedMapping struct {
	VA uint64
	PA uint64
}

// EnclaveSpec is everything needed to build (and to predict the
// measurement of) an enclave.
type EnclaveSpec struct {
	EvBase  uint64
	EvMask  uint64
	Regions []int // DRAM regions to grant before loading
	Pages   []EnclavePage
	Shared  []SharedMapping
	Threads []ThreadSpec
}

// TableAlloc is one page-table allocation in canonical order.
type TableAlloc struct {
	VA    uint64
	Level int
}

// TablePlan computes the canonical page-table allocation sequence for a
// set of mapped VAs: the root first, then level-1 tables by ascending
// normalized VA, then level-0 tables likewise. Builder and measurement
// replayer share this order, so predicted and actual measurements agree.
func TablePlan(vas []uint64) []TableAlloc {
	plan := []TableAlloc{{VA: 0, Level: pt.Levels - 1}}
	for level := pt.Levels - 2; level >= 0; level-- {
		seen := map[uint64]bool{}
		var prefixes []uint64
		for _, va := range vas {
			n := sm.NormalizeTableVA(va, level)
			if !seen[n] {
				seen[n] = true
				prefixes = append(prefixes, n)
			}
		}
		sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
		for _, p := range prefixes {
			plan = append(plan, TableAlloc{VA: p, Level: level})
		}
	}
	return plan
}

// BuiltEnclave is the result of BuildEnclave.
type BuiltEnclave struct {
	EID         uint64
	TIDs        []uint64
	Measurement [32]byte
}

// BuildEnclave drives the monitor's loading API (Fig 3) end to end:
// create, grant, allocate tables, load pages, map shared windows, load
// threads, init. The call sequence is canonical so that
// ExpectedMeasurement predicts the result exactly.
func (o *OS) BuildEnclave(spec *EnclaveSpec) (*BuiltEnclave, error) {
	eid, err := o.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := o.Mon.CreateEnclave(eid, spec.EvBase, spec.EvMask); st != api.OK {
		return nil, fmt.Errorf("os: create_enclave: %v", st)
	}
	for _, r := range spec.Regions {
		if st := o.Mon.GrantRegion(r, eid); st != api.OK {
			return nil, fmt.Errorf("os: grant region %d: %v", r, st)
		}
	}

	var vas []uint64
	for _, p := range spec.Pages {
		vas = append(vas, p.VA)
	}
	for _, s := range spec.Shared {
		vas = append(vas, s.VA)
	}
	for _, ta := range TablePlan(vas) {
		if st := o.Mon.AllocatePageTable(eid, ta.VA, ta.Level); st != api.OK {
			return nil, fmt.Errorf("os: allocate_page_table(va=%#x, level=%d): %v", ta.VA, ta.Level, st)
		}
	}

	// Stage each page in kernel memory and load it.
	stagePA, err := o.StagePage()
	if err != nil {
		return nil, err
	}
	for _, p := range spec.Pages {
		if len(p.Data) > mem.PageSize {
			return nil, fmt.Errorf("os: page at %#x larger than a page", p.VA)
		}
		var buf [mem.PageSize]byte
		copy(buf[:], p.Data)
		if err := o.WriteOwned(stagePA, buf[:]); err != nil {
			return nil, err
		}
		if st := o.Mon.LoadPage(eid, p.VA, stagePA, p.Perms); st != api.OK {
			return nil, fmt.Errorf("os: load_page(va=%#x): %v", p.VA, st)
		}
	}
	for _, s := range spec.Shared {
		if st := o.Mon.MapShared(eid, s.VA, s.PA); st != api.OK {
			return nil, fmt.Errorf("os: map_shared(va=%#x): %v", s.VA, st)
		}
	}

	built := &BuiltEnclave{EID: eid}
	for _, t := range spec.Threads {
		tid, err := o.AllocMetaPage()
		if err != nil {
			return nil, err
		}
		if st := o.Mon.LoadThread(eid, tid, t.EntryVA, t.StackVA); st != api.OK {
			return nil, fmt.Errorf("os: load_thread(entry=%#x): %v", t.EntryVA, st)
		}
		built.TIDs = append(built.TIDs, tid)
	}

	if st := o.Mon.InitEnclave(eid); st != api.OK {
		return nil, fmt.Errorf("os: init_enclave: %v", st)
	}
	_, meas, st := o.Mon.EnclaveInfo(eid)
	if st != api.OK {
		return nil, fmt.Errorf("os: enclave_info: %v", st)
	}
	built.Measurement = meas
	return built, nil
}

// ExpectedMeasurement replays the measurement transcript for a spec
// without touching a machine: the computation a remote verifier (or the
// author of a signing-enclave policy) performs to learn what a
// correctly-loaded enclave must measure as (§VI-A).
func ExpectedMeasurement(spec *EnclaveSpec) [32]byte {
	m := sm.NewMeasurement()
	m.ExtendCreate(spec.EvBase, spec.EvMask)
	var vas []uint64
	for _, p := range spec.Pages {
		vas = append(vas, p.VA)
	}
	for _, s := range spec.Shared {
		vas = append(vas, s.VA)
	}
	for _, ta := range TablePlan(vas) {
		m.ExtendPageTable(sm.NormalizeTableVA(ta.VA, ta.Level), ta.Level)
	}
	for _, p := range spec.Pages {
		var buf [mem.PageSize]byte
		copy(buf[:], p.Data)
		m.ExtendPage(p.VA, p.Perms, buf[:])
	}
	for _, s := range spec.Shared {
		m.ExtendShared(s.VA)
	}
	for _, t := range spec.Threads {
		m.ExtendThread(t.EntryVA, t.StackVA)
	}
	return m.Finalize()
}
