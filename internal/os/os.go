// Package os models the untrusted operating system of the paper's
// threat model: the resource manager that owns scheduling and
// allocation decisions but is outside the TCB. Every monitor operation
// it performs travels through the unified call ABI — api.Request values
// submitted via the smcall client, which also centralizes the §V-A
// retry discipline — and its own memory is reached through
// S-mode-checked accesses, so everything it does is subject to the
// monitor's invariants, including when the adversarial tests make it
// misbehave.
package os

import (
	"fmt"
	"sort"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/smcall"
	"sanctorum/internal/telemetry"
)

// OS is a minimal untrusted kernel for the simulated machine.
type OS struct {
	M *machine.Machine
	// SM is the monitor as the OS sees it: the typed client over the
	// unified call ABI. All monitor calls go through it.
	SM *smcall.Client

	// Telemetry is the registry OS-side components (the gateway)
	// instrument against. Set by the facade right after construction;
	// nil leaves them uninstrumented. Untrusted like everything else
	// here — the monitor has its own wiring via SetTelemetry.
	Telemetry *telemetry.Registry

	// kernelRegion is the OS region used for its own page tables,
	// staging buffers and user program images.
	kernelRegion int
	nextPage     uint64 // bump allocator within kernelRegion (ppn)
	endPage      uint64

	// metaRegion is the region granted to the SM for metadata.
	metaRegion   int
	nextMetaPage uint64
	endMetaPage  uint64
	metaFree     []uint64 // released metadata pages available for reuse

	// stagePA is the kernel page reused for staging load_page sources
	// and ABI calls that return bytes through OS memory.
	stagePA uint64

	// Root of the OS page tables (maps user programs and shared pages).
	root *pt.Builder
}

// New sets up the OS: it claims kernelRegion for its own allocations
// and grants metaRegion to the monitor for enclave/thread metadata.
func New(m *machine.Machine, mon *sm.Monitor, kernelRegion, metaRegion int) (*OS, error) {
	o := &OS{M: m, SM: smcall.New(mon), kernelRegion: kernelRegion, metaRegion: metaRegion}
	if st, owner, err := o.SM.RegionInfo(kernelRegion); err != nil || st != api.RegionOwned || owner != api.DomainOS {
		return nil, fmt.Errorf("os: kernel region %d not OS-owned", kernelRegion)
	}
	if err := o.SM.GrantRegion(metaRegion, api.DomainSM); err != nil {
		return nil, fmt.Errorf("os: granting metadata region: %w", err)
	}
	layout := m.DRAM
	o.nextPage = layout.Base(kernelRegion) >> mem.PageBits
	o.endPage = o.nextPage + layout.PagesPerRegion()
	if o.nextPage == 0 {
		// PPN 0 is reserved: a zero page-table root means bare
		// translation to the hardware.
		o.nextPage = 1
	}
	o.nextMetaPage = layout.Base(metaRegion)
	o.endMetaPage = o.nextMetaPage + layout.RegionSize()

	root, err := pt.NewBuilder(m.Mem, o.allocPage)
	if err != nil {
		return nil, err
	}
	o.root = root
	return o, nil
}

// allocPage bump-allocates a kernel page (ppn).
func (o *OS) allocPage() (uint64, error) {
	if o.nextPage >= o.endPage {
		return 0, fmt.Errorf("os: kernel region exhausted")
	}
	p := o.nextPage
	o.nextPage++
	return p, nil
}

// AllocPagePA allocates a kernel page and returns its physical address.
func (o *OS) AllocPagePA() (uint64, error) {
	p, err := o.allocPage()
	if err != nil {
		return 0, err
	}
	return p << mem.PageBits, nil
}

// AllocMetaPage hands out an unused metadata page address for use as an
// eid or tid.
func (o *OS) AllocMetaPage() (uint64, error) {
	if n := len(o.metaFree); n > 0 {
		p := o.metaFree[n-1]
		o.metaFree = o.metaFree[:n-1]
		return p, nil
	}
	if o.nextMetaPage >= o.endMetaPage {
		return 0, fmt.Errorf("os: metadata region exhausted")
	}
	p := o.nextMetaPage
	o.nextMetaPage += mem.PageSize
	return p, nil
}

// ReleaseMetaPage returns a metadata page to the allocator after the
// monitor has freed the corresponding object (delete_enclave or
// delete_thread).
func (o *OS) ReleaseMetaPage(pa uint64) { o.metaFree = append(o.metaFree, pa) }

// AllocMetaPages hands out n contiguous unused metadata pages and
// returns the first one's address — the tid base a clone_enclave call
// needs, one page per template thread. Contiguity requires the bump
// region; freed single pages are not coalesced.
func (o *OS) AllocMetaPages(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("os: AllocMetaPages(%d)", n)
	}
	if n == 1 {
		return o.AllocMetaPage()
	}
	need := uint64(n) * mem.PageSize
	if o.nextMetaPage+need > o.endMetaPage {
		return 0, fmt.Errorf("os: metadata region exhausted")
	}
	p := o.nextMetaPage
	o.nextMetaPage += need
	return p, nil
}

// StagePage returns the kernel page used for staging enclave page
// contents, allocating it on first use.
func (o *OS) StagePage() (uint64, error) {
	if o.stagePA == 0 {
		pa, err := o.AllocPagePA()
		if err != nil {
			return 0, err
		}
		o.stagePA = pa
	}
	return o.stagePA, nil
}

// ownsRegion checks one region is Owned by the OS, through the client
// (which absorbs ErrRetry centrally — the hand-rolled per-caller loops
// of the pre-ABI surface are gone).
func (o *OS) ownsRegion(r int) bool {
	st, owner, err := o.SM.RegionInfo(r)
	return err == nil && st == api.RegionOwned && owner == api.DomainOS
}

// WriteOwned writes bytes into OS-owned physical memory after checking
// ownership with the monitor — the simulation stand-in for an S-mode
// kernel store into its own memory.
func (o *OS) WriteOwned(pa uint64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	// The end-of-range computation must not wrap: for pa near 2^64,
	// pa+len-1 overflows to a small address whose region lookup could
	// succeed and bypass the ownership walk below.
	if pa > ^uint64(0)-(uint64(len(data))-1) {
		return fmt.Errorf("os: write outside memory")
	}
	first := o.M.DRAM.RegionOf(pa)
	last := o.M.DRAM.RegionOf(pa + uint64(len(data)) - 1)
	if first < 0 || last < 0 {
		return fmt.Errorf("os: write outside memory")
	}
	for r := first; r <= last; r++ {
		if !o.ownsRegion(r) {
			return fmt.Errorf("os: region %d is not ours", r)
		}
	}
	return o.M.Mem.WriteBytes(pa, data)
}

// ReadOwned is the read counterpart of WriteOwned.
func (o *OS) ReadOwned(pa uint64, n int) ([]byte, error) {
	if n <= 0 {
		if n < 0 {
			return nil, fmt.Errorf("os: negative read length")
		}
		return nil, nil
	}
	// Guard the same end-of-range wrap as WriteOwned.
	if pa > ^uint64(0)-(uint64(n)-1) {
		return nil, fmt.Errorf("os: read outside memory")
	}
	first := o.M.DRAM.RegionOf(pa)
	last := o.M.DRAM.RegionOf(pa + uint64(n) - 1)
	if first < 0 || last < 0 {
		return nil, fmt.Errorf("os: read outside memory")
	}
	for r := first; r <= last; r++ {
		if !o.ownsRegion(r) {
			return nil, fmt.Errorf("os: region %d is not ours", r)
		}
	}
	buf := make([]byte, n)
	if err := o.M.Mem.ReadBytes(pa, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// MapUser maps va→pa into the OS page tables with the given PTE flags.
func (o *OS) MapUser(va, pa uint64, flags uint64) error {
	return o.root.Map(va, pa, flags)
}

// Root returns the OS page-table root PPN, to be installed as a core's
// Satp when running OS-scheduled user code.
func (o *OS) Root() uint64 { return o.root.Root }

// LoadUserProgram stages a binary into kernel memory and maps it
// executable (and writable, for simplicity of test programs) at baseVA
// in the OS page tables.
func (o *OS) LoadUserProgram(bin []byte, baseVA uint64) error {
	if baseVA&mem.PageMask != 0 {
		return fmt.Errorf("os: program base %#x not page aligned", baseVA)
	}
	for off := 0; off < len(bin); off += mem.PageSize {
		pa, err := o.AllocPagePA()
		if err != nil {
			return err
		}
		end := off + mem.PageSize
		if end > len(bin) {
			end = len(bin)
		}
		if err := o.WriteOwned(pa, bin[off:end]); err != nil {
			return err
		}
		if err := o.MapUser(baseVA+uint64(off), pa, pt.R|pt.W|pt.X|pt.U); err != nil {
			return err
		}
	}
	return nil
}

// MapUserPage allocates a fresh kernel page and maps it rw at va,
// returning its physical address (shared buffers, stacks).
func (o *OS) MapUserPage(va uint64) (uint64, error) {
	pa, err := o.AllocPagePA()
	if err != nil {
		return 0, err
	}
	return pa, o.MapUser(va, pa, pt.R|pt.W|pt.U)
}

// RunUser points a core at the OS address space and runs user code at
// pc until the monitor returns control.
func (o *OS) RunUser(coreID int, pc, sp uint64, maxSteps int) (machine.RunResult, error) {
	c := o.M.Cores[coreID]
	c.Satp = o.Root()
	c.CPU.Mode = isa.PrivU
	c.CPU.PC = pc
	c.CPU.Halted = false
	c.CPU.SetReg(isa.RegSP, sp)
	return o.M.Run(coreID, maxSteps)
}

// EnterEnclave schedules an enclave thread via the monitor with the
// OS's address-space root live on the core — under Sanctum, enclave
// accesses outside evrange translate through the OS page tables, which
// on real hardware are simply whatever satp the OS had installed. The
// call is submitted exactly once: contention comes back as
// api.ErrRetry, so the scheduler can requeue the task rather than spin
// on the core slot.
func (o *OS) EnterEnclave(coreID int, eid, tid uint64) api.Error {
	o.M.Cores[coreID].Satp = o.Root()
	return o.SM.TryEnterEnclave(coreID, eid, tid)
}

// SendMail stages a message in kernel memory and delivers it to the
// recipient enclave's armed mailbox through the ABI, carrying the
// reserved OS identity.
func (o *OS) SendMail(recipientEID uint64, msg []byte) error {
	if len(msg) > api.MailboxSize {
		return fmt.Errorf("os: message larger than a mailbox: %w", api.ErrInvalidValue)
	}
	stagePA, err := o.StagePage()
	if err != nil {
		return err
	}
	if err := o.WriteOwned(stagePA, msg); err != nil {
		return err
	}
	if err := o.SM.SendMail(recipientEID, stagePA, len(msg)); err != nil {
		return fmt.Errorf("os: send_mail: %w", err)
	}
	return nil
}

// GetField reads a public monitor metadata field (§VI-C) through the
// ABI: the monitor writes the bytes into the OS staging page and the
// kernel copies them out.
func (o *OS) GetField(f api.Field) ([]byte, error) {
	stagePA, err := o.StagePage()
	if err != nil {
		return nil, err
	}
	n, err := o.SM.GetField(f, stagePA, mem.PageSize)
	if err != nil {
		return nil, fmt.Errorf("os: get_field(%d): %w", uint64(f), err)
	}
	return o.ReadOwned(stagePA, n)
}

// ABIVersion probes the monitor's call ABI version.
func (o *OS) ABIVersion() (uint64, error) { return o.SM.ABIVersion() }

// FreeRegions returns the OS-owned regions other than the kernel
// region, sorted ascending — candidates for granting to enclaves.
func (o *OS) FreeRegions() []int {
	var out []int
	for r := 0; r < o.M.DRAM.RegionCount; r++ {
		if r == o.kernelRegion {
			continue
		}
		if o.ownsRegion(r) {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}
