package os

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/telemetry"
)

// Gateway is the untrusted OS's request-serving front end over the
// monitor's mailbox rings (DESIGN.md §9): host requests go in, enclave
// responses come out, and everything in between is verified IPC.
//
// Each pool worker gets a request ring (producer: OS, consumer:
// worker) and a response ring (producer: worker, consumer: OS). The
// worker — a ring server from internal/enclaves — parks on its request
// ring; the gateway batches requests into ring sends, and the
// monitor's park/wake protocol tells the gateway which workers became
// runnable (the wake sink, fed through the IPI mailboxes — no OS
// polling of idle workers). Woken workers are then timeshared over the
// machine's cores by the existing OS scheduler for one wave; each
// drains its ring, serves every request, streams the responses into
// its response ring, and parks again. The gateway drains the response
// rings, verifies the monitor's sender stamp on every record (worker
// eid and template measurement — attestation-grade provenance), and
// matches responses to requests FIFO per worker.
//
// Like the pool and the loader, the gateway is resource management
// outside the TCB: every step travels through the call ABI, and
// nothing it does can weaken the monitor's guarantees.
type Gateway struct {
	o     *OS
	pool  *Pool
	wakes WakeSource
	cfg   GatewayConfig

	workers []*gwWorker
	byEID   map[uint64]int

	sendPA uint64 // staging page for outbound payload batches
	recvPA uint64 // staging page for inbound record batches

	// woken collects wake notifications (worker indexes). The sink runs
	// on whatever goroutine drains the posted IPI — during gateway
	// sends the cores are idle, so in practice the gateway's own — but
	// it is locked for the parallel-scheduler case regardless.
	wokenMu sync.Mutex
	woken   map[int]bool

	// Served and Waves count gateway activity for reporting.
	Served int
	Waves  int

	// tel caches the gateway's instrument handles (nil when the OS has
	// no registry); trace is an armed per-request trace consumed by
	// the next ProcessKeyed call.
	tel   *gwTelemetry
	trace *gwTrace
}

// gwTelemetry is the gateway's cached instrument set; stamps are
// modeled cycles from the machine, never wall time.
type gwTelemetry struct {
	clock     func() uint64
	served    *telemetry.Counter
	waves     *telemetry.Counter
	chunk     *telemetry.Histogram // requests per batched ring send
	reqCycles *telemetry.Histogram // per-request end-to-end cycles
	inflight  *telemetry.Gauge     // outstanding requests, all workers
}

// gwTrace carries one armed request trace through a ProcessKeyed call:
// dispatch→send→execute→recv→response spans for the request at idx.
type gwTrace struct {
	t      *telemetry.Trace
	parent int
	idx    int
	worker int
	span   int
	done   bool
}

// TraceRequest arms tracing for the request at index idx of the next
// ProcessKeyed call, emitting spans under parent into t. One request
// per call; the fleet router uses this to extend its trace through the
// shard's gateway.
func (g *Gateway) TraceRequest(t *telemetry.Trace, parent, idx int) {
	if t == nil {
		g.trace = nil
		return
	}
	g.trace = &gwTrace{t: t, parent: parent, idx: idx, worker: -1, span: -1}
}

// gwWorker is one pool worker wired to its ring pair (and, when the
// gateway runs a bulk data plane, its grant and shared buffer).
type gwWorker struct {
	w        *Worker
	reqRing  uint64
	respRing uint64
	grant    uint64 // bulk grant id (0 when bulk is off)
	bulkPA   uint64 // bulk buffer base PA
	bulkVA   uint64 // where this worker bulk_maps the buffer
	inflight int    // requests sent, responses not yet drained
	pending  []int  // request indexes awaiting responses, FIFO

	// stamps parallels pending with each request's send-time cycle
	// stamp (maintained only when telemetry is wired); stampHead is
	// the FIFO read position, so the backing array is reused across
	// waves instead of sliding — drains reset it when it empties.
	// depth is this worker's queue-depth gauge.
	stamps    []uint64
	stampHead int
	depth     *telemetry.Gauge
}

// GatewayConfig configures NewGateway. Zero fields take defaults.
type GatewayConfig struct {
	// Workers is the number of pool workers to acquire (default 2).
	Workers int
	// RingCapacity is each ring's capacity in messages (default 64).
	RingCapacity int
	// Batch bounds the messages per ring send/recv the gateway issues
	// (default 8, capped at api.RingMaxBatch).
	Batch int
	// Sched configures the per-wave OS scheduler (mode, quantum).
	Sched SchedConfig
	// MaxStepsPerWake bounds a worker's instructions per wave; a worker
	// still running past it is forced off and reported as an error
	// (default 5,000,000).
	MaxStepsPerWake int
	// Router selects the worker for each request chunk (default a
	// RoundRobin; fleet shards install KeyAffinity).
	Router Router
	// BulkPages, when nonzero, turns on the zero-copy bulk data plane
	// (DESIGN.md §14): each worker gets a contiguous BulkPages-page
	// OS buffer under a monitor grant, mapped at a distinct per-worker
	// VA, and ProcessBulk serves scatter-gather descriptor requests
	// through it. The pool template must be a bulk server
	// (internal/enclaves.BulkEchoServer / BulkKVServer) built with
	// BulkSpec. At most api.BulkMaxPages.
	BulkPages int
	// BulkVABase is where worker 0 maps its bulk buffer; worker i maps
	// at BulkVABase + i·BulkPages·4096 (default 0x50001000, inside the
	// 2 MiB leaf BulkSpec's shared window allocates). Every worker's
	// window must fit that leaf: under Sanctum all workers resolve
	// these VAs through the one OS page table, which is why the
	// addresses differ per worker in the first place.
	BulkVABase uint64
	// BulkRegion, when positive, is a free OS-owned DRAM region whose
	// pages back the bulk buffers (worker i at offset i·BulkPages·4096)
	// — the usual choice, since the kernel region is small. While any
	// grant lives, the page pins make the monitor refuse to scrub the
	// region for reassignment. Zero allocates from the kernel region.
	BulkRegion int
}

// WakeSource is the monitor surface the gateway registers its
// park/wake sink with; *sm.Monitor implements it.
type WakeSource interface {
	SetWakeSink(func(ringID, eid, tid uint64))
}

func (cfg *GatewayConfig) fill() {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 64
	}
	if cfg.RingCapacity > api.RingMaxCapacity {
		cfg.RingCapacity = api.RingMaxCapacity
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.Batch > api.RingMaxBatch {
		cfg.Batch = api.RingMaxBatch
	}
	if cfg.MaxStepsPerWake <= 0 {
		cfg.MaxStepsPerWake = 5_000_000
	}
	if cfg.Router == nil {
		cfg.Router = &RoundRobin{}
	}
	if cfg.BulkPages > api.BulkMaxPages {
		cfg.BulkPages = api.BulkMaxPages
	}
	if cfg.BulkVABase == 0 {
		cfg.BulkVABase = 0x50001000
	}
}

// NewGateway forks cfg.Workers ring-serving workers from the pool's
// template, wires each to a request/response ring pair, registers the
// park/wake sink, and runs one startup wave so every worker discovers
// its rings and parks. The pool's template must be a single-thread
// ring server (internal/enclaves.RingEchoServer / RingKVServer).
func NewGateway(o *OS, wakes WakeSource, pool *Pool, cfg GatewayConfig) (*Gateway, error) {
	cfg.fill()
	g := &Gateway{
		o:     o,
		pool:  pool,
		wakes: wakes,
		cfg:   cfg,
		byEID: make(map[uint64]int),
		woken: make(map[int]bool),
	}
	if reg := o.Telemetry; reg != nil {
		g.tel = &gwTelemetry{
			clock:     o.M.CycleNow,
			served:    reg.Counter("os.gateway.served"),
			waves:     reg.Counter("os.gateway.waves"),
			chunk:     reg.Histogram("os.gateway.chunk.size"),
			reqCycles: reg.Histogram("os.gateway.request.cycles"),
			inflight:  reg.Gauge("os.gateway.inflight"),
		}
	}
	// A failed constructor unwinds what it built — rings destroyed,
	// workers released to the pool — so retrying gateway construction
	// leaks neither pool capacity nor SM metadata pages. Best-effort:
	// the original error is the one reported.
	fail := func(err error) (*Gateway, error) {
		for _, gw := range g.workers {
			if o.SM.RingDestroy(gw.reqRing) == nil {
				o.ReleaseMetaPage(gw.reqRing)
			}
			if o.SM.RingDestroy(gw.respRing) == nil {
				o.ReleaseMetaPage(gw.respRing)
			}
			// Rings first: destroying them releases any queued descriptor
			// pins, so the revoke cannot be refused for in-flight data.
			if gw.grant != 0 && o.SM.BulkRevoke(gw.grant) == nil {
				o.ReleaseMetaPage(gw.grant)
			}
			pool.Release(gw.w)
		}
		return nil, err
	}
	var err error
	if g.sendPA, err = o.AllocPagePA(); err != nil {
		return nil, err
	}
	if g.recvPA, err = o.AllocPagePA(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		gw, err := g.newWorker()
		if err != nil {
			return fail(fmt.Errorf("os: gateway worker %d: %w", i, err))
		}
		g.byEID[gw.w.EID] = i
		g.workers = append(g.workers, gw)
		g.wireWorkerGauge(gw, i)
	}
	// Bulk buffers and grants must exist before the startup wave: the
	// workers discover their grants in it.
	if cfg.BulkPages > 0 {
		for i, gw := range g.workers {
			if err := g.setupBulk(gw, i); err != nil {
				return fail(fmt.Errorf("os: gateway bulk worker %d: %w", i, err))
			}
		}
	}
	wakes.SetWakeSink(func(ringID, eid, tid uint64) {
		g.wokenMu.Lock()
		if i, known := g.byEID[eid]; known {
			g.woken[i] = true
		}
		g.wokenMu.Unlock()
	})
	// Startup wave: every worker runs from its entry, reads its ring
	// directory, finds the request ring empty, and parks.
	var all []int
	for i := range g.workers {
		all = append(all, i)
	}
	if err := g.wave(all, api.ParkedExitValue); err != nil {
		wakes.SetWakeSink(func(ringID, eid, tid uint64) {})
		return fail(fmt.Errorf("os: gateway startup: %w", err))
	}
	// Second boot phase for bulk workers: each is parked waiting for
	// the setup message naming its window VA; send it, then run the
	// wave in which every worker bulk_maps its buffer and parks serving.
	if cfg.BulkPages > 0 {
		for i, gw := range g.workers {
			if err := g.sendBulkSetup(gw); err != nil {
				wakes.SetWakeSink(func(ringID, eid, tid uint64) {})
				return fail(fmt.Errorf("os: gateway bulk setup %d: %w", i, err))
			}
		}
		if err := g.wave(g.takeWoken(), api.ParkedExitValue); err != nil {
			wakes.SetWakeSink(func(ringID, eid, tid uint64) {})
			return fail(fmt.Errorf("os: gateway bulk map: %w", err))
		}
	}
	return g, nil
}

// setupBulk gives one worker its bulk data plane: contiguous OS pages,
// a monitor grant between the OS and the worker, and the OS-side user
// mapping at the worker's distinct VA. The OS mapping is the Sanctum
// path (enclaves there resolve non-evrange VAs through the one OS page
// table); under Keystone the worker's own tables serve the VA after
// bulk_map and the OS mapping is inert.
func (g *Gateway) setupBulk(gw *gwWorker, idx int) error {
	pages := uint64(g.cfg.BulkPages)
	size := pages * mem.PageSize
	gw.bulkVA = g.cfg.BulkVABase + uint64(idx)*size
	if r := g.cfg.BulkRegion; r > 0 {
		off := uint64(idx) * size
		if off+size > g.o.M.DRAM.RegionSize() {
			return fmt.Errorf("os: bulk region %d too small for worker %d", r, idx)
		}
		gw.bulkPA = g.o.M.DRAM.Base(r) + off
		for p := uint64(0); p < pages; p++ {
			if err := g.o.MapUser(gw.bulkVA+p*mem.PageSize, gw.bulkPA+p*mem.PageSize, pt.R|pt.W|pt.U); err != nil {
				return err
			}
		}
	} else {
		for p := uint64(0); p < pages; p++ {
			pa, err := g.o.AllocPagePA()
			if err != nil {
				return err
			}
			if p == 0 {
				gw.bulkPA = pa
			} else if pa != gw.bulkPA+p*mem.PageSize {
				// The page allocator is a bump allocator, so sequential
				// allocations are contiguous unless it crossed into a
				// non-adjacent range.
				return fmt.Errorf("os: bulk buffer not contiguous at page %d", p)
			}
			if err := g.o.MapUser(gw.bulkVA+p*mem.PageSize, pa, pt.R|pt.W|pt.U); err != nil {
				return err
			}
		}
	}
	grant, err := g.o.AllocMetaPage()
	if err != nil {
		return err
	}
	if err := g.o.SM.BulkGrant(grant, gw.bulkPA, g.cfg.BulkPages, api.DomainOS, gw.w.EID); err != nil {
		g.o.ReleaseMetaPage(grant)
		return fmt.Errorf("os: bulk_grant: %w", err)
	}
	gw.grant = grant
	return nil
}

// sendBulkSetup sends the one-message VA handshake: the first (plain)
// message on a bulk worker's request ring carries the window VA in
// word 0. The measured template cannot embed per-worker addresses, so
// they travel over the ring the worker already trusts for requests —
// the VA is untrusted either way, since bulk_map validates it.
func (g *Gateway) sendBulkSetup(gw *gwWorker) error {
	var msg [api.RingMsgSize]byte
	binary.LittleEndian.PutUint64(msg[:], gw.bulkVA)
	if err := g.o.WriteOwned(g.sendPA, msg[:]); err != nil {
		return err
	}
	if _, err := g.o.SM.RingSend(gw.reqRing, g.sendPA, 1); err != nil {
		return fmt.Errorf("os: gateway bulk setup send: %w", err)
	}
	return nil
}

// newWorker forks one pool worker and wires its ring pair, unwinding
// its own partial state on failure so the caller sees either a fully
// wired worker or nothing.
func (g *Gateway) newWorker() (*gwWorker, error) {
	w, err := g.pool.Acquire(0)
	if err != nil {
		return nil, err
	}
	gw := &gwWorker{w: w}
	fail := func(err error) (*gwWorker, error) {
		if gw.reqRing != 0 && g.o.SM.RingDestroy(gw.reqRing) == nil {
			g.o.ReleaseMetaPage(gw.reqRing)
		}
		if gw.respRing != 0 && g.o.SM.RingDestroy(gw.respRing) == nil {
			g.o.ReleaseMetaPage(gw.respRing)
		}
		g.pool.Release(w)
		return nil, err
	}
	if len(w.TIDs) != 1 {
		return fail(fmt.Errorf("os: gateway template has %d threads, want 1", len(w.TIDs)))
	}
	if gw.reqRing, err = g.o.AllocMetaPage(); err != nil {
		return fail(err)
	}
	if err := g.o.SM.RingCreate(gw.reqRing, api.DomainOS, w.EID, g.cfg.RingCapacity); err != nil {
		gw.reqRing = 0
		return fail(fmt.Errorf("os: gateway request ring: %w", err))
	}
	if gw.respRing, err = g.o.AllocMetaPage(); err != nil {
		return fail(err)
	}
	if err := g.o.SM.RingCreate(gw.respRing, w.EID, api.DomainOS, g.cfg.RingCapacity); err != nil {
		gw.respRing = 0
		return fail(fmt.Errorf("os: gateway response ring: %w", err))
	}
	return gw, nil
}

// AddWorker forks one more worker from the pool and wires it into the
// serving set, running its startup wave (the worker discovers its
// rings and parks) before returning. This is the fleet rebalancer's
// warm-up hook: a drain target gains serving capacity before any
// traffic cuts over to it. The pool must still have clone regions.
func (g *Gateway) AddWorker() error {
	gw, err := g.newWorker()
	if err != nil {
		return fmt.Errorf("os: gateway add worker: %w", err)
	}
	// byEID is read by the wake sink under wokenMu; publish the new
	// worker under the same lock.
	g.wokenMu.Lock()
	g.byEID[gw.w.EID] = len(g.workers)
	g.workers = append(g.workers, gw)
	idx := len(g.workers) - 1
	g.wokenMu.Unlock()
	g.wireWorkerGauge(gw, idx)
	if g.cfg.BulkPages > 0 {
		if err := g.setupBulk(gw, idx); err != nil {
			return fmt.Errorf("os: gateway add worker bulk: %w", err)
		}
	}
	if err := g.wave([]int{idx}, api.ParkedExitValue); err != nil {
		return fmt.Errorf("os: gateway add worker startup: %w", err)
	}
	if g.cfg.BulkPages > 0 {
		if err := g.sendBulkSetup(gw); err != nil {
			return fmt.Errorf("os: gateway add worker bulk setup: %w", err)
		}
		if err := g.wave(g.takeWoken(), api.ParkedExitValue); err != nil {
			return fmt.Errorf("os: gateway add worker bulk map: %w", err)
		}
	}
	return nil
}

// wireWorkerGauge gives a freshly wired worker its per-worker queue
// depth gauge. In a fleet every shard shares one registry, so the
// gauge for worker idx aggregates across shards (Add-based deltas).
func (g *Gateway) wireWorkerGauge(gw *gwWorker, idx int) {
	if g.tel != nil {
		gw.depth = g.o.Telemetry.Gauge(fmt.Sprintf("os.gateway.worker%d.inflight", idx))
	}
}

// NumWorkers reports the current serving-set size.
func (g *Gateway) NumWorkers() int { return len(g.workers) }

// takeWoken drains the wake set in worker order (deterministic under
// the deterministic scheduler, where sinks fire synchronously on the
// sending goroutine).
func (g *Gateway) takeWoken() []int {
	g.wokenMu.Lock()
	idxs := make([]int, 0, len(g.woken))
	for i := range g.woken {
		idxs = append(idxs, i)
	}
	g.woken = make(map[int]bool)
	g.wokenMu.Unlock()
	sort.Ints(idxs)
	return idxs
}

// wave timeshares the given workers over the cores through the OS
// scheduler until each returns to the OS, requiring exit value want
// from every one (ParkedExitValue in steady state, WorkerExitStatus
// for the shutdown wave).
func (g *Gateway) wave(idxs []int, want uint64) error {
	if len(idxs) == 0 {
		return nil
	}
	tasks := make([]Task, 0, len(idxs))
	for _, i := range idxs {
		gw := g.workers[i]
		tasks = append(tasks, Task{EID: gw.w.EID, TID: gw.w.TIDs[0], MaxSteps: g.cfg.MaxStepsPerWake})
	}
	g.Waves++
	if t := g.tel; t != nil {
		t.waves.Inc(0)
	}
	results := g.o.NewScheduler(g.cfg.Sched).RunAll(tasks)
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("os: gateway worker %d: %w", idxs[i], res.Err)
		}
		if res.Reason != machine.StopReturnToOS || res.ExitValue != want {
			return fmt.Errorf("os: gateway worker %d stopped %v with a0=%#x, want a0=%#x",
				idxs[i], res.Reason, res.ExitValue, want)
		}
	}
	return nil
}

// sendChunk stages payloads[from:from+n] in the staging page and
// enqueues them on gw's request ring as one batched send.
func (g *Gateway) sendChunk(gw *gwWorker, payloads [][]byte, from, n int) error {
	return g.sendChunkWith(gw, payloads, from, n, func(pa uint64, n int) (int, error) {
		return g.o.SM.RingSend(gw.reqRing, pa, n)
	})
}

// sendBulkChunk is sendChunk over bulk_send: every payload is a
// scatter-gather descriptor message the monitor validates against gw's
// grant before anything is published.
func (g *Gateway) sendBulkChunk(gw *gwWorker, payloads [][]byte, from, n int) error {
	return g.sendChunkWith(gw, payloads, from, n, func(pa uint64, n int) (int, error) {
		return g.o.SM.BulkSend(gw.reqRing, pa, n, gw.grant)
	})
}

func (g *Gateway) sendChunkWith(gw *gwWorker, payloads [][]byte, from, n int,
	send func(pa uint64, n int) (int, error)) error {
	buf := make([]byte, n*api.RingMsgSize)
	for i := 0; i < n; i++ {
		p := payloads[from+i]
		if len(p) > api.RingMsgSize {
			return fmt.Errorf("os: gateway request %d larger than a ring message", from+i)
		}
		copy(buf[i*api.RingMsgSize:], p)
	}
	if err := g.o.WriteOwned(g.sendPA, buf); err != nil {
		return err
	}
	sent, err := send(g.sendPA, n)
	if err != nil {
		return fmt.Errorf("os: gateway send: %w", err)
	}
	if sent != n {
		// Unreachable: inflight accounting keeps n within free slots.
		return fmt.Errorf("os: gateway send transferred %d of %d", sent, n)
	}
	for i := 0; i < n; i++ {
		gw.pending = append(gw.pending, from+i)
	}
	gw.inflight += n
	if t := g.tel; t != nil {
		if gw.stampHead == len(gw.stamps) {
			gw.stamps, gw.stampHead = gw.stamps[:0], 0
		}
		now := t.clock()
		for i := 0; i < n; i++ {
			gw.stamps = append(gw.stamps, now)
		}
		t.chunk.Observe(uint64(n))
		t.inflight.Add(int64(n))
		gw.depth.Add(int64(n))
	}
	return nil
}

// drain empties gw's response ring into out, verifying the monitor's
// sender stamp on every record, and returns how many responses landed.
func (g *Gateway) drain(gw *gwWorker, out [][]byte) (int, error) {
	return g.drainWith(gw, out, func(pa uint64, max int) (int, error) {
		return g.o.SM.RingRecv(gw.respRing, pa, max)
	})
}

func (g *Gateway) drainWith(gw *gwWorker, out [][]byte,
	recv func(pa uint64, max int) (int, error)) (int, error) {
	total := 0
	// One clock read serves the whole drain: recv is a host-side
	// monitor call, so no modeled cycles retire while draining.
	var now uint64
	if g.tel != nil && gw.inflight > 0 {
		now = g.tel.clock()
	}
	for gw.inflight > 0 {
		n, err := recv(g.recvPA, g.cfg.Batch)
		if errors.Is(err, api.ErrInvalidState) {
			break // empty
		}
		if err != nil {
			return total, fmt.Errorf("os: gateway recv: %w", err)
		}
		records, err := g.o.ReadOwned(g.recvPA, n*api.RingRecordSize)
		if err != nil {
			return total, err
		}
		for i := 0; i < n; i++ {
			rec := records[i*api.RingRecordSize : (i+1)*api.RingRecordSize]
			var meas [32]byte
			copy(meas[:], rec)
			sender := binary.LittleEndian.Uint64(rec[32:40])
			if sender != gw.w.EID || meas != g.pool.Template.Measurement {
				return total, fmt.Errorf("os: gateway response stamp mismatch: sender %#x meas %x",
					sender, meas[:4])
			}
			if len(gw.pending) == 0 {
				return total, fmt.Errorf("os: gateway response with no pending request")
			}
			idx := gw.pending[0]
			gw.pending = gw.pending[1:]
			gw.inflight--
			if t := g.tel; t != nil {
				t.reqCycles.Observe(now - gw.stamps[gw.stampHead])
				gw.stampHead++
			}
			payload := make([]byte, api.RingMsgSize)
			copy(payload, rec[api.RingStampSize:])
			out[idx] = payload
			total++
		}
	}
	// The in-flight gauges fold the whole drain in one update each.
	if t := g.tel; t != nil && total > 0 {
		t.inflight.Add(-int64(total))
		gw.depth.Add(-int64(total))
	}
	return total, nil
}

// Process serves a batch of host requests end to end and returns one
// api.RingMsgSize response per request, in request order. Requests are
// distributed across the workers by the configured Router (default
// round-robin) in chunks of up to Batch messages per ring send; each
// iteration sends what fits, runs one scheduler wave over the workers
// the monitor woke, and drains their response rings. Under the
// deterministic scheduler the whole run — scheduling, preemptions,
// ring traffic — is bit-reproducible.
func (g *Gateway) Process(payloads [][]byte) ([][]byte, error) {
	return g.ProcessKeyed(nil, payloads)
}

// ProcessKeyed is Process with an explicit routing key per request —
// the fleet's per-shard serving entry point, where keys are session
// ids and the KeyAffinity router keeps a session on one worker. A nil
// keys slice routes every request with key 0 (round-robin ignores the
// key entirely). Response matching is unchanged: FIFO per worker,
// every record's monitor stamp verified against the worker identity
// and the pool template measurement.
func (g *Gateway) ProcessKeyed(keys []uint64, payloads [][]byte) ([][]byte, error) {
	if keys != nil && len(keys) != len(payloads) {
		return nil, fmt.Errorf("os: gateway: %d keys for %d payloads", len(keys), len(payloads))
	}
	out := make([][]byte, len(payloads))
	tr := g.trace
	g.trace = nil
	if tr != nil && (tr.idx < 0 || tr.idx >= len(payloads)) {
		tr = nil
	}
	cursor, done := 0, 0
	space := func(i int) int { return g.cfg.RingCapacity - g.workers[i].inflight }
	for done < len(payloads) {
		// Assign as many requests as ring capacity allows.
		for cursor < len(payloads) {
			var key uint64
			if keys != nil {
				key = keys[cursor]
			}
			i := g.cfg.Router.Pick(key, len(g.workers), space)
			if i < 0 {
				break // every ring full: serve a wave first
			}
			gw := g.workers[i]
			n := g.cfg.Batch
			if s := space(i); n > s {
				n = s
			}
			if rem := len(payloads) - cursor; n > rem {
				n = rem
			}
			if keys != nil {
				// A chunk stays within one routing key: the same key
				// always routes the same way, so a contiguous same-key
				// run is the unit that can share one batched send.
				run := 1
				for run < n && keys[cursor+run] == key {
					run++
				}
				n = run
			}
			if err := g.sendChunk(gw, payloads, cursor, n); err != nil {
				return nil, err
			}
			if tr != nil && tr.worker < 0 && tr.idx >= cursor && tr.idx < cursor+n {
				// The traced request just went out: open its dispatch
				// span and record the (host-side, hence instant) send.
				tr.worker = i
				tr.span = tr.t.Begin(tr.parent, "gateway", fmt.Sprintf("dispatch worker=%d", i))
				tr.t.End(tr.t.Begin(tr.span, "ring", fmt.Sprintf("send n=%d", n)))
			}
			cursor += n
		}
		// The sends woke every parked worker that got traffic; run them.
		woken := g.takeWoken()
		if len(woken) == 0 {
			return nil, fmt.Errorf("os: gateway stalled: %d responses outstanding, no worker woken",
				len(payloads)-done)
		}
		workSpan := -1
		if tr != nil && tr.worker >= 0 && !tr.done && containsInt(woken, tr.worker) {
			// This wave runs the traced worker's enclave: the only part
			// of the journey where modeled cycles actually retire.
			workSpan = tr.t.Begin(tr.span, "worker", "execute")
		}
		if err := g.wave(woken, api.ParkedExitValue); err != nil {
			return nil, err
		}
		if workSpan >= 0 {
			tr.t.End(workSpan)
		}
		for _, i := range woken {
			n, err := g.drain(g.workers[i], out)
			if err != nil {
				return nil, err
			}
			done += n
			if tr != nil && !tr.done && tr.worker == i && out[tr.idx] != nil {
				tr.t.End(tr.t.Begin(tr.span, "ring", "recv"))
				tr.t.End(tr.t.Begin(tr.span, "gateway", "response"))
				tr.t.End(tr.span)
				tr.done = true
			}
		}
	}
	g.Served += len(payloads)
	if t := g.tel; t != nil {
		t.served.Add(0, uint64(len(payloads)))
	}
	return out, nil
}

// BulkBuffer returns worker i's bulk grant id, buffer base PA and byte
// size (zeroes when the bulk plane is off). The host stages request
// bytes at the PA with WriteOwned, names spans of them in descriptor
// messages (api.EncodeBulkDescs), and reads results back with
// ReadOwned — the data itself never passes through the monitor.
func (g *Gateway) BulkBuffer(i int) (grant, basePA uint64, size int) {
	if i < 0 || i >= len(g.workers) || g.cfg.BulkPages == 0 {
		return 0, 0, 0
	}
	gw := g.workers[i]
	return gw.grant, gw.bulkPA, g.cfg.BulkPages * mem.PageSize
}

// ProcessBulk serves a batch of scatter-gather descriptor requests
// through worker i's bulk grant, returning one response message per
// request in request order with every monitor stamp verified — the
// zero-copy analogue of Process. Requests all go to the one worker
// whose buffer holds the data (payload placement is the caller's job,
// so routing is too); batching, waves and FIFO response matching work
// exactly as in Process.
func (g *Gateway) ProcessBulk(worker int, payloads [][]byte) ([][]byte, error) {
	if worker < 0 || worker >= len(g.workers) {
		return nil, fmt.Errorf("os: gateway: no worker %d", worker)
	}
	gw := g.workers[worker]
	if gw.grant == 0 {
		return nil, fmt.Errorf("os: gateway: bulk plane not configured")
	}
	out := make([][]byte, len(payloads))
	cursor, done := 0, 0
	for done < len(payloads) {
		for cursor < len(payloads) {
			n := g.cfg.RingCapacity - gw.inflight
			if n == 0 {
				break // ring full: serve a wave first
			}
			if n > g.cfg.Batch {
				n = g.cfg.Batch
			}
			if rem := len(payloads) - cursor; n > rem {
				n = rem
			}
			if err := g.sendBulkChunk(gw, payloads, cursor, n); err != nil {
				return nil, err
			}
			cursor += n
		}
		woken := g.takeWoken()
		if len(woken) == 0 {
			return nil, fmt.Errorf("os: gateway stalled: %d responses outstanding, no worker woken",
				len(payloads)-done)
		}
		if err := g.wave(woken, api.ParkedExitValue); err != nil {
			return nil, err
		}
		for _, i := range woken {
			// Responses come back as plain messages (the worker's reply
			// need not parse as descriptors), so the ordinary drain serves.
			n, err := g.drain(g.workers[i], out)
			if err != nil {
				return nil, err
			}
			done += n
		}
	}
	g.Served += len(payloads)
	if t := g.tel; t != nil {
		t.served.Add(0, uint64(len(payloads)))
	}
	return out, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Close shuts the service down: destroy every ring (waking the parked
// workers into failing parks — their shutdown signal), run the final
// wave in which each worker exits cleanly, and release the workers
// back to the pool. Teardown is best-effort — every step runs and the
// first error is the one reported — so a failed wave still unhooks
// the wake sink and returns what it can to the pool. The gateway is
// unusable afterwards; the pool remains open for the caller to Close.
func (g *Gateway) Close() error {
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for _, gw := range g.workers {
		if err := g.o.SM.RingDestroy(gw.reqRing); err == nil {
			g.o.ReleaseMetaPage(gw.reqRing)
		} else {
			keep(fmt.Errorf("os: gateway destroy request ring: %w", err))
		}
		if err := g.o.SM.RingDestroy(gw.respRing); err == nil {
			g.o.ReleaseMetaPage(gw.respRing)
		} else {
			keep(fmt.Errorf("os: gateway destroy response ring: %w", err))
		}
		// After both rings are gone no descriptor into the grant can be
		// in flight, so the revoke cannot be refused.
		if gw.grant != 0 {
			if err := g.o.SM.BulkRevoke(gw.grant); err == nil {
				g.o.ReleaseMetaPage(gw.grant)
			} else {
				keep(fmt.Errorf("os: gateway bulk revoke: %w", err))
			}
		}
	}
	keep(g.wave(g.takeWoken(), enclaveExitStatus))
	g.wakes.SetWakeSink(func(ringID, eid, tid uint64) {})
	for i, gw := range g.workers {
		if err := g.pool.Release(gw.w); err != nil {
			keep(fmt.Errorf("os: gateway release worker %d: %w", i, err))
		}
	}
	return firstErr
}

// enclaveExitStatus mirrors internal/enclaves.WorkerExitStatus without
// importing the enclave programs into the OS model.
const enclaveExitStatus = 0x42
