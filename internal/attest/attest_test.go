package attest

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"sanctorum/internal/hw/trng"
	"sanctorum/internal/sm/boot"
)

// evidenceFixture fabricates a valid evidence blob the way the signing
// enclave + monitor would.
func evidenceFixture(t *testing.T) (*Evidence, [NonceSize]byte, Policy) {
	t.Helper()
	mfr := boot.NewManufacturer("acme", []byte("seed"))
	dev := mfr.Provision("dev-7", []byte("secret-7"))
	id, err := dev.Boot([]byte("good monitor"))
	if err != nil {
		t.Fatal(err)
	}
	var nonce [NonceSize]byte
	copy(nonce[:], "a verifier-chosen random nonce!!")
	var meas [32]byte
	copy(meas[:], "expected enclave measurement 123")

	ka, err := NewKeyAgreement(trng.NewDeterministic([]byte("enclave")))
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evidence{
		EnclaveMeasurement: meas,
		Nonce:              nonce,
		KAShare:            ka.Share(),
		CertChain:          id.Chain.Marshal(),
	}
	ev.Signature = ed25519.Sign(id.AttestPriv, ev.SignedPayload())
	pol := Policy{
		TrustedRoot:     mfr.RootKey(),
		ExpectedEnclave: meas,
		AcceptMonitor:   func(m []byte) bool { return string(m) == string(id.Measurement[:]) },
	}
	return ev, nonce, pol
}

func TestVerifyAcceptsGoodEvidence(t *testing.T) {
	ev, nonce, pol := evidenceFixture(t)
	if err := Verify(ev, nonce, pol); err != nil {
		t.Fatalf("good evidence rejected: %v", err)
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	ev, nonce, pol := evidenceFixture(t)
	nonce[0] ^= 1
	if err := Verify(ev, nonce, pol); !errors.Is(err, ErrWrongNonce) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsWrongEnclave(t *testing.T) {
	ev, nonce, pol := evidenceFixture(t)
	pol.ExpectedEnclave[5] ^= 1
	if err := Verify(ev, nonce, pol); !errors.Is(err, ErrWrongEnclave) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsTamperedShare(t *testing.T) {
	ev, nonce, pol := evidenceFixture(t)
	ev.KAShare[3] ^= 1 // MITM swap of the key agreement share
	if err := Verify(ev, nonce, pol); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsForeignRoot(t *testing.T) {
	ev, nonce, pol := evidenceFixture(t)
	other := boot.NewManufacturer("mallory", []byte("other"))
	pol.TrustedRoot = other.RootKey()
	if err := Verify(ev, nonce, pol); !errors.Is(err, ErrUntrustedChain) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsBadMonitorMeasurement(t *testing.T) {
	ev, nonce, pol := evidenceFixture(t)
	pol.AcceptMonitor = func([]byte) bool { return false }
	if err := Verify(ev, nonce, pol); !errors.Is(err, ErrWrongMonitor) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	_, nonce, pol := evidenceFixture(t)
	if err := Verify(nil, nonce, pol); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("nil evidence: %v", err)
	}
	ev, _, _ := evidenceFixture(t)
	ev.Signature = ev.Signature[:10]
	if err := Verify(ev, nonce, pol); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("short signature: %v", err)
	}
	ev2, _, _ := evidenceFixture(t)
	ev2.CertChain = ev2.CertChain[:7]
	if err := Verify(ev2, nonce, pol); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("truncated chain: %v", err)
	}
}

func TestKeyAgreementDerivesSharedKey(t *testing.T) {
	a, err := NewKeyAgreement(trng.NewDeterministic([]byte("a")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKeyAgreement(trng.NewDeterministic([]byte("b")))
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.SessionKey(b.Share())
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.SessionKey(a.Share())
	if err != nil {
		t.Fatal(err)
	}
	if string(ka) != string(kb) {
		t.Fatal("the two sides derived different keys")
	}
	c, _ := NewKeyAgreement(trng.NewDeterministic([]byte("c")))
	kc, _ := c.SessionKey(a.Share())
	if string(kc) == string(ka) {
		t.Fatal("third party derived the session key")
	}
}

func TestSealOpen(t *testing.T) {
	a, _ := NewKeyAgreement(trng.NewDeterministic([]byte("a")))
	b, _ := NewKeyAgreement(trng.NewDeterministic([]byte("b")))
	key, _ := a.SessionKey(b.Share())
	msg := []byte("post-attestation traffic")
	tag := Seal(key, msg)
	if !Open(key, msg, tag) {
		t.Fatal("valid message rejected")
	}
	if Open(key, append(msg, 'x'), tag) {
		t.Fatal("tampered message accepted")
	}
	otherKey, _ := b.SessionKey(b.Share())
	if Open(otherKey, msg, tag) {
		t.Fatal("wrong key accepted")
	}
}
