// Package attest implements the verifier side of Sanctorum's
// attestation protocols (paper §VI): local attestation via
// monitor-stamped mailbox measurements (Fig 6) and remote attestation
// via the signing enclave and the manufacturer PKI (Fig 7), including
// the key agreement that gives the remote party a private channel whose
// trust is bootstrapped by the attestation.
package attest

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"

	"sanctorum/internal/crypto/cert"
	"sanctorum/internal/crypto/kdf"
)

// NonceSize is the verifier nonce length.
const NonceSize = 32

// Errors returned by verification.
var (
	ErrBadEvidence    = errors.New("attest: malformed evidence")
	ErrBadSignature   = errors.New("attest: signature verification failed")
	ErrWrongNonce     = errors.New("attest: nonce mismatch")
	ErrWrongEnclave   = errors.New("attest: enclave measurement mismatch")
	ErrUntrustedChain = errors.New("attest: certificate chain not rooted in trusted key")
	ErrWrongMonitor   = errors.New("attest: monitor measurement not acceptable")
)

// Evidence is what the remote verifier receives at step 8 of Fig 7:
// the signing enclave's signature over (enclave measurement ‖ nonce ‖
// key-agreement share), plus the monitor certificate chain connecting
// the signing key to the manufacturer PKI.
type Evidence struct {
	EnclaveMeasurement [32]byte
	Nonce              [NonceSize]byte
	KAShare            []byte // enclave's key-agreement public share
	Signature          []byte // monitor-key signature over SignedPayload()
	CertChain          []byte // marshalled cert.Chain
}

// SignedPayload is the exact byte string the signing enclave submits to
// the monitor's attest-sign call: measurement ‖ nonce ‖ KA share. Both
// sides must agree on this framing.
func (ev *Evidence) SignedPayload() []byte {
	out := make([]byte, 0, 32+NonceSize+len(ev.KAShare))
	out = append(out, ev.EnclaveMeasurement[:]...)
	out = append(out, ev.Nonce[:]...)
	out = append(out, ev.KAShare...)
	return out
}

// Policy is what the verifier requires of the attestation.
type Policy struct {
	// TrustedRoot is the pinned manufacturer public key.
	TrustedRoot ed25519.PublicKey
	// ExpectedEnclave is the measurement the enclave must have
	// (computed by replaying the loading transcript, e.g. with
	// os.ExpectedMeasurement).
	ExpectedEnclave [32]byte
	// AcceptMonitor decides whether a monitor measurement is
	// trustworthy (e.g. a known-good monitor release). nil accepts any
	// monitor certified by the PKI.
	AcceptMonitor func(measurement []byte) bool
}

// Verify checks the evidence against the policy and the nonce the
// verifier chose (steps 9 of Fig 7). On success the verifier may trust
// that KAShare was produced inside the expected enclave on a device
// running a certified monitor.
func Verify(ev *Evidence, nonce [NonceSize]byte, pol Policy) error {
	if ev == nil || len(ev.Signature) != ed25519.SignatureSize || len(ev.KAShare) == 0 {
		return ErrBadEvidence
	}
	if ev.Nonce != nonce {
		return ErrWrongNonce
	}
	if ev.EnclaveMeasurement != pol.ExpectedEnclave {
		return ErrWrongEnclave
	}
	chain, err := cert.UnmarshalChain(ev.CertChain)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadEvidence, err)
	}
	leaf, err := chain.Verify(pol.TrustedRoot)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUntrustedChain, err)
	}
	if leaf.Role != cert.RoleMonitor {
		return fmt.Errorf("%w: leaf is %v, not a monitor", ErrUntrustedChain, leaf.Role)
	}
	if pol.AcceptMonitor != nil && !pol.AcceptMonitor(leaf.Measurement) {
		return ErrWrongMonitor
	}
	if !ed25519.Verify(leaf.SubjectKey, ev.SignedPayload(), ev.Signature) {
		return ErrBadSignature
	}
	return nil
}

// KeyAgreement is one side of the X25519 exchange of Fig 7 step 1.
type KeyAgreement struct {
	priv *ecdh.PrivateKey
}

// NewKeyAgreement draws an ephemeral key pair from rng. It reads
// exactly 32 bytes (unlike crypto/ecdh's GenerateKey, which consumes a
// nondeterministic extra byte from the stream), so a seeded rng
// replays bit-identically — the property deterministic fleet
// handshakes rely on. X25519 clamps the scalar, so any 32 bytes form a
// valid key.
func NewKeyAgreement(rng io.Reader) (*KeyAgreement, error) {
	var seed [32]byte
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, err
	}
	priv, err := ecdh.X25519().NewPrivateKey(seed[:])
	if err != nil {
		return nil, err
	}
	return &KeyAgreement{priv: priv}, nil
}

// Share returns the public share to transmit.
func (ka *KeyAgreement) Share() []byte { return ka.priv.PublicKey().Bytes() }

// SessionKey combines the peer's share into a symmetric session key.
// Both sides derive the same key; transcript binds both shares.
func (ka *KeyAgreement) SessionKey(peerShare []byte) ([]byte, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerShare)
	if err != nil {
		return nil, err
	}
	secret, err := ka.priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	return kdf.SessionKey(secret, ka.Share(), peerShare), nil
}

// Seal authenticates a message under the session key (the paper's
// step 10: the shared key authenticates all subsequent messages). This
// is an authenticator, not encryption: confidentiality of the channel
// is out of scope for the reproduction's experiments.
func Seal(sessionKey, msg []byte) [32]byte { return kdf.MAC(sessionKey, msg) }

// Open verifies a sealed message.
func Open(sessionKey, msg []byte, tag [32]byte) bool {
	return kdf.VerifyMAC(sessionKey, msg, tag)
}
