package attest

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"sanctorum/internal/crypto/sha3"
)

// Wire form for evidence crossing machines (the fleet's cross-machine
// handshake, DESIGN.md §12): measurement ‖ nonce ‖ three u32-length-
// prefixed variable fields (KA share, signature, cert chain). The
// encoding carries no trust — a forged or replayed blob parses fine
// and is refused by Verify.

// MarshalEvidence encodes ev for ring transport.
func MarshalEvidence(ev *Evidence) []byte {
	out := make([]byte, 0, 32+NonceSize+12+len(ev.KAShare)+len(ev.Signature)+len(ev.CertChain))
	out = append(out, ev.EnclaveMeasurement[:]...)
	out = append(out, ev.Nonce[:]...)
	for _, field := range [][]byte{ev.KAShare, ev.Signature, ev.CertChain} {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(field)))
		out = append(out, n[:]...)
		out = append(out, field...)
	}
	return out
}

// UnmarshalEvidence decodes a MarshalEvidence blob.
func UnmarshalEvidence(blob []byte) (*Evidence, error) {
	ev := &Evidence{}
	if len(blob) < 32+NonceSize {
		return nil, fmt.Errorf("%w: evidence blob of %d bytes", ErrBadEvidence, len(blob))
	}
	copy(ev.EnclaveMeasurement[:], blob)
	copy(ev.Nonce[:], blob[32:])
	rest := blob[32+NonceSize:]
	for _, field := range []*[]byte{&ev.KAShare, &ev.Signature, &ev.CertChain} {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated field length", ErrBadEvidence)
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n > len(rest) {
			return nil, fmt.Errorf("%w: field of %d bytes in %d remaining", ErrBadEvidence, n, len(rest))
		}
		*field = append([]byte(nil), rest[:n]...)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEvidence, len(rest))
	}
	return ev, nil
}

// ChannelBinding derives a channel's identity from the two directional
// attestation transcripts that established it: a hash over both signed
// payloads (measurement ‖ nonce ‖ share of each direction), absorbed
// in sorted order so both endpoints derive the same value regardless
// of who initiated. Every data message on the channel is authenticated
// together with this binding, so a message sealed for one attested
// pipe cannot be replayed onto another even by an adversary holding
// both transcripts: the MAC keys differ and the binding pins the
// measurements the channel was established between.
func ChannelBinding(a, b *Evidence) [32]byte {
	pa, pb := a.SignedPayload(), b.SignedPayload()
	if bytes.Compare(pa, pb) > 0 {
		pa, pb = pb, pa
	}
	blob := make([]byte, 0, len(pa)+len(pb)+16)
	blob = append(blob, "fleet-channel-v1"...)
	blob = append(blob, pa...)
	blob = append(blob, pb...)
	return sha3.Sum256(blob)
}
