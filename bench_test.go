// Benchmark harness: one benchmark per paper artifact (see
// EXPERIMENTS.md for the index). The paper's evaluation is qualitative
// — state machines, protocols, TCB size — so these benchmarks measure
// the cost of every monitor operation the figures describe, plus the
// ablations DESIGN.md calls out. Absolute numbers are host-dependent;
// the comparisons (who is cheaper, by what factor) are the
// reproduction's results.
package sanctorum_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"sanctorum"
	"sanctorum/internal/adversary"
	"sanctorum/internal/asm"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/os"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
)

func mustSystem(b *testing.B, kind sanctorum.Kind, signing [32]byte) *sanctorum.System {
	b.Helper()
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind, SigningMeasurement: signing})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func mustBuild(b *testing.B, sys *sanctorum.System, l enclaves.Layout, prog *asm.Program,
	dataInit []byte, regions []int, sharedPA uint64) *os.BuiltEnclave {
	b.Helper()
	spec, err := enclaves.Spec(l, prog, dataInit, regions,
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		b.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		b.Fatal(err)
	}
	return built
}

// tryCall issues one monitor call through the unified-ABI client
// without the client's retry loop — the single-shot §V-A transaction
// the old direct-method surface exposed (its compat shims are no
// longer linked outside their own tests).
func tryCall(sys *sanctorum.System, c api.Call, args ...uint64) api.Error {
	return sys.OS.SM.Try(api.OSRequest(c, args...)).Status
}

// --- E1 (Fig 1): SM event routing cost ---

// BenchmarkE1TrapRoundTrip measures one enclave ECALL handled entirely
// by the monitor (get_random): trap entry, authorization, service,
// resume.
func BenchmarkE1TrapRoundTrip(b *testing.B) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		b.Run(kind.String(), func(b *testing.B) {
			sys := mustSystem(b, kind, [32]byte{})
			l := enclaves.DefaultLayout()
			sharedPA, _ := sys.SetupShared(l.SharedVA)
			regions := sys.OS.FreeRegions()
			built := mustBuild(b, sys, l, enclaves.EcallLoop(l), nil, regions[:1], sharedPA)
			if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
				b.Fatalf("enter: %v", st)
			}
			b.ResetTimer()
			// Each Run step budget covers exactly one ecall iteration
			// (~4 instructions); the enclave loops forever.
			for i := 0; i < b.N; i++ {
				if _, err := sys.Machine.Run(0, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2 (Fig 2): resource state machine ---

// BenchmarkE2RegionLifecycle measures one full block→clean→grant cycle,
// including the region scrub, cache flush and TLB shootdowns.
func BenchmarkE2RegionLifecycle(b *testing.B) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		b.Run(kind.String(), func(b *testing.B) {
			sys := mustSystem(b, kind, [32]byte{})
			r := sys.OS.FreeRegions()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st := tryCall(sys, api.CallBlockRegion, uint64(r)); st != api.OK {
					b.Fatalf("block: %v", st)
				}
				if st := tryCall(sys, api.CallCleanRegion, uint64(r)); st != api.OK {
					b.Fatalf("clean: %v", st)
				}
				if st := tryCall(sys, api.CallGrantRegion, uint64(r), api.DomainOS); st != api.OK {
					b.Fatalf("grant: %v", st)
				}
			}
		})
	}
}

// --- E3 (Fig 3): enclave lifecycle, swept over enclave size ---

func BenchmarkE3EnclaveLifecycle(b *testing.B) {
	for _, pages := range []int{4, 16, 48} {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
			l := enclaves.DefaultLayout()
			sharedPA, _ := sys.SetupShared(l.SharedVA)
			grant := sys.OS.FreeRegions()[:2]
			// A spec with `pages` data pages of initial content.
			spec := &os.EnclaveSpec{
				EvBase: l.EvBase, EvMask: l.EvMask,
				Regions: grant,
				Shared:  []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}},
			}
			content := make([]byte, mem.PageSize)
			for p := 0; p < pages; p++ {
				spec.Pages = append(spec.Pages, os.EnclavePage{
					VA: l.EvBase + uint64(p)*mem.PageSize, Perms: pt.R | pt.X, Data: content,
				})
			}
			spec.Threads = []os.ThreadSpec{{EntryVA: l.EvBase, StackVA: l.EvBase + 0x800}}
			b.SetBytes(int64(pages) * mem.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				built, err := sys.BuildEnclave(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				teardown(b, sys, built, grant)
				b.StartTimer()
			}
		})
	}
}

// teardown deletes an enclave and restores its resources for the next
// benchmark iteration.
func teardown(b *testing.B, sys *sanctorum.System, built *os.BuiltEnclave, regions []int) {
	b.Helper()
	if st := tryCall(sys, api.CallDeleteEnclave, built.EID); st != api.OK {
		b.Fatalf("delete: %v", st)
	}
	for _, tid := range built.TIDs {
		if st := tryCall(sys, api.CallDeleteThread, tid); st != api.OK {
			b.Fatalf("delete thread: %v", st)
		}
		sys.OS.ReleaseMetaPage(tid)
	}
	sys.OS.ReleaseMetaPage(built.EID)
	for _, region := range regions {
		if st := tryCall(sys, api.CallCleanRegion, uint64(region)); st != api.OK {
			b.Fatalf("clean region %d: %v", region, st)
		}
		if st := tryCall(sys, api.CallGrantRegion, uint64(region), api.DomainOS); st != api.OK {
			b.Fatalf("grant region %d: %v", region, st)
		}
	}
}

// --- E4 (Fig 4): thread scheduling: enter/exit and AEX/resume ---

// BenchmarkE4EnterExit measures a full enclave entry (core clean,
// enclave view programming) plus a voluntary exit (core clean, OS view).
func BenchmarkE4EnterExit(b *testing.B) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		b.Run(kind.String(), func(b *testing.B) {
			sys := mustSystem(b, kind, [32]byte{})
			l := enclaves.DefaultLayout()
			sharedPA, _ := sys.SetupShared(l.SharedVA)
			regions := sys.OS.FreeRegions()
			built := mustBuild(b, sys, l, enclaves.ExitImmediately(l), nil, regions[:1], sharedPA)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Enter(0, built.EID, built.TIDs[0], 100_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4AEXResume measures a timer-forced AEX plus the subsequent
// re-entry and register-file restoration.
func BenchmarkE4AEXResume(b *testing.B) {
	sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	built := mustBuild(b, sys, l, enclaves.Counter(l), nil, regions[:1], sharedPA)
	core := sys.Machine.Cores[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
			b.Fatalf("enter: %v", st)
		}
		core.TimerCmp = core.CPU.Cycles + 500
		if _, err := sys.Machine.Run(0, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5 (Fig 5): mailbox round trip ---

func BenchmarkE5MailRoundTrip(b *testing.B) {
	sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	built := mustBuild(b, sys, l, enclaves.MailReceiver(l),
		enclaves.ReceiverDataInit([32]byte{}), regions[:1], sharedPA)
	msg := []byte("benchmark ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Arm (enter), OS send, drain+verify (enter).
		sys.SharedWriteWord(sharedPA, enclaves.ShInput, 0)
		sys.SharedWriteWord(sharedPA, enclaves.ShPeerEID, api.DomainOS)
		if _, err := sys.Enter(0, built.EID, built.TIDs[0], 100_000); err != nil {
			b.Fatal(err)
		}
		if st := sys.Monitor.SendMailFromOS(built.EID, msg); st != api.OK {
			b.Fatalf("send: %v", st)
		}
		sys.SharedWriteWord(sharedPA, enclaves.ShInput, 1)
		if _, err := sys.Enter(0, built.EID, built.TIDs[0], 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6 (Fig 6): local attestation ---

func BenchmarkE6LocalAttestation(b *testing.B) {
	sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
	lS := enclaves.DefaultLayout()
	lR := enclaves.DefaultLayout()
	lR.SharedVA = 0x50002000
	regions := sys.OS.FreeRegions()
	shSend, _ := sys.SetupShared(lS.SharedVA)
	shRecv, _ := sys.SetupShared(lR.SharedVA)
	msg := make([]byte, api.MailboxSize)
	copy(msg, "bench")
	sendSpec, err := enclaves.Spec(lS, enclaves.MailSender(lS),
		enclaves.SenderDataInit(msg), regions[:1],
		[]os.SharedMapping{{VA: lS.SharedVA, PA: shSend}})
	if err != nil {
		b.Fatal(err)
	}
	expected := os.ExpectedMeasurement(sendSpec)
	recvSpec, _ := enclaves.Spec(lR, enclaves.MailReceiver(lR),
		enclaves.ReceiverDataInit(expected), regions[1:2],
		[]os.SharedMapping{{VA: lR.SharedVA, PA: shRecv}})
	sender, err := sys.BuildEnclave(sendSpec)
	if err != nil {
		b.Fatal(err)
	}
	receiver, err := sys.BuildEnclave(recvSpec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.SharedWriteWord(shRecv, enclaves.ShInput, 0)
		sys.SharedWriteWord(shRecv, enclaves.ShPeerEID, sender.EID)
		sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000)
		sys.SharedWriteWord(shSend, enclaves.ShPeerEID, receiver.EID)
		sys.Enter(0, sender.EID, sender.TIDs[0], 100_000)
		sys.SharedWriteWord(shRecv, enclaves.ShInput, 1)
		sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000)
		if v, _ := sys.SharedReadWord(shRecv, enclaves.ShOutput); v != 1 {
			b.Fatalf("attestation verdict %d", v)
		}
	}
}

// --- E7 (Fig 7): remote attestation ---

func BenchmarkE7RemoteAttestation(b *testing.B) {
	lES := enclaves.DefaultLayout()
	lE1 := enclaves.DefaultLayout()
	lE1.SharedVA = 0x50002000
	esTemplate, _ := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, nil,
		[]os.SharedMapping{{VA: lES.SharedVA}})
	sys := mustSystem(b, sanctorum.Sanctum, os.ExpectedMeasurement(esTemplate))
	regions := sys.OS.FreeRegions()
	shES, _ := sys.SetupShared(lES.SharedVA)
	shE1, _ := sys.SetupShared(lE1.SharedVA)
	esSpec, _ := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, regions[:1],
		[]os.SharedMapping{{VA: lES.SharedVA, PA: shES}})
	e1Spec, _ := enclaves.Spec(lE1, enclaves.AttestedClient(lE1),
		enclaves.ClientDataInit(), regions[1:2],
		[]os.SharedMapping{{VA: lE1.SharedVA, PA: shE1}})
	es, err := sys.BuildEnclave(esSpec)
	if err != nil {
		b.Fatal(err)
	}
	e1, err := sys.BuildEnclave(e1Spec)
	if err != nil {
		b.Fatal(err)
	}
	var nonce [32]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonce[0] = byte(i)
		sys.SharedWriteWord(shES, enclaves.ShInput, 0)
		sys.SharedWriteWord(shES, enclaves.ShPeerEID, e1.EID)
		sys.Enter(0, es.EID, es.TIDs[0], 1_000_000)
		sys.SharedWriteWord(shE1, enclaves.ShInput, 0)
		sys.SharedWriteWord(shE1, enclaves.ShPeerEID, es.EID)
		sys.SharedWrite(shE1+enclaves.ShNonce, nonce[:])
		sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000)
		sys.SharedWriteWord(shES, enclaves.ShInput, 1)
		sys.Enter(0, es.EID, es.TIDs[0], 1_000_000)
		sys.SharedWriteWord(shE1, enclaves.ShInput, 1)
		sys.SharedWrite(shE1+enclaves.ShPeerKA, make([]byte, 32))
		sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000)
	}
}

// --- E8 (§VII-A): measurement throughput (the dominant loading cost) ---

func BenchmarkE8MeasurementExtend(b *testing.B) {
	m := sm.NewMeasurement()
	page := make([]byte, mem.PageSize)
	b.SetBytes(mem.PageSize)
	for i := 0; i < b.N; i++ {
		m.ExtendPage(uint64(i)<<12, pt.R, page)
	}
}

// --- E9 (§VII-A/B): the isolation comparison ---

func BenchmarkE9PrimeProbe(b *testing.B) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		b.Run(kind.String(), func(b *testing.B) {
			sys := mustSystem(b, kind, [32]byte{})
			calib, calibRegion, _, err := adversary.BuildVictim(sys, 0)
			if err != nil {
				b.Fatal(err)
			}
			victim, victimRegion, arrayIdx, err := adversary.BuildVictim(sys, 5)
			if err != nil {
				b.Fatal(err)
			}
			pp, err := adversary.NewPrimeProbe(sys, victimRegion, arrayIdx,
				adversary.PrimeRegionsFor(sys, victimRegion, calibRegion))
			if err != nil {
				b.Fatal(err)
			}
			recovered := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := pp.Run(calib.EID, calib.TIDs[0], victim.EID, victim.TIDs[0])
				if err != nil {
					b.Fatal(err)
				}
				if res.Strength >= 50 && res.Guess == 5 {
					recovered++
				}
			}
			b.ReportMetric(float64(recovered)/float64(b.N), "secret-recovery-rate")
		})
	}
}

// --- E11 (§V-A): concurrent transaction throughput ---

func BenchmarkE11ConcurrentRegionOps(b *testing.B) {
	sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
	regions := sys.OS.FreeRegions()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := uint64(regions[i%len(regions)])
			i++
			if tryCall(sys, api.CallBlockRegion, r) == api.OK {
				for tryCall(sys, api.CallCleanRegion, r) != api.OK {
				}
				for tryCall(sys, api.CallGrantRegion, r, api.DomainOS) != api.OK {
				}
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationMeasureGranularity compares per-page measurement
// extension (the paper's design, enabling incremental loading) against
// hashing the whole image at init.
func BenchmarkAblationMeasureGranularity(b *testing.B) {
	const pages = 64
	image := make([]byte, pages*mem.PageSize)
	b.Run("per-page", func(b *testing.B) {
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			m := sm.NewMeasurement()
			for p := 0; p < pages; p++ {
				m.ExtendPage(uint64(p)<<12, pt.R, image[p*mem.PageSize:(p+1)*mem.PageSize])
			}
			m.Finalize()
		}
	})
	b.Run("whole-image", func(b *testing.B) {
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			m := sm.NewMeasurement()
			m.ExtendPage(0, pt.R, image)
			m.Finalize()
		}
	})
}

// BenchmarkAblationTLBInvalidate compares the selective shootdown used
// on region re-allocation with a full TLB flush.
func BenchmarkAblationTLBInvalidate(b *testing.B) {
	fill := func(t *tlb.TLB) {
		for i := uint64(0); i < 32; i++ {
			t.Insert(tlb.Entry{VPN: i, PPN: i * 16})
		}
	}
	b.Run("selective-shootdown", func(b *testing.B) {
		t := tlb.New(32)
		for i := 0; i < b.N; i++ {
			fill(t)
			t.FlushIf(func(e tlb.Entry) bool { return e.PPN >= 256 })
		}
	})
	b.Run("full-flush", func(b *testing.B) {
		t := tlb.New(32)
		for i := 0; i < b.N; i++ {
			fill(t)
			t.Flush()
		}
	})
}

// BenchmarkAblationLockContention contrasts the paper's
// fail-on-concurrency transactions with what blocking callers would
// cost, measured as useful operations completed under contention.
func BenchmarkAblationLockContention(b *testing.B) {
	sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
	r := uint64(sys.OS.FreeRegions()[0])
	b.Run("try-lock-api", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The monitor's calls never block; a failed transaction
			// returns immediately.
			tryCall(sys, api.CallBlockRegion, r)
			tryCall(sys, api.CallCleanRegion, r)
			tryCall(sys, api.CallGrantRegion, r, api.DomainOS)
		}
	})
}

// --- E16: ring serving throughput (DESIGN.md §9) ---

// BenchmarkServeThroughput measures the per-message monitor overhead
// of ring IPC and how batching amortizes it: an OS→OS loopback ring
// carries b.N messages, moved either one per Dispatch pair (send 1,
// recv 1 — the per-message cost every request would pay without
// batching) or api.RingMaxBatch per call. ns/op is ns per message in
// both cases, so the sub-benchmark ratio is the amortization factor
// the CI gate enforces (≥5×).
func BenchmarkServeThroughput(b *testing.B) {
	setup := func(b *testing.B) (*sanctorum.System, uint64, uint64, uint64) {
		sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
		ringID, err := sys.OS.AllocMetaPage()
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.OS.SM.RingCreate(ringID, api.DomainOS, api.DomainOS, api.RingMaxBatch); err != nil {
			b.Fatal(err)
		}
		sendPA, err := sys.OS.AllocPagePA()
		if err != nil {
			b.Fatal(err)
		}
		recvPA, err := sys.OS.AllocPagePA()
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, api.RingMaxBatch*api.RingMsgSize)
		for i := range payload {
			payload[i] = byte(i)
		}
		if err := sys.OS.WriteOwned(sendPA, payload); err != nil {
			b.Fatal(err)
		}
		return sys, ringID, sendPA, recvPA
	}
	b.Run("per-message", func(b *testing.B) {
		sys, ringID, sendPA, recvPA := setup(b)
		send := api.OSRequest(api.CallRingSend, ringID, sendPA, 1)
		recv := api.OSRequest(api.CallRingRecv, ringID, recvPA, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := sys.Monitor.Dispatch(send); resp.Status != api.OK {
				b.Fatal(resp.Status)
			}
			if resp := sys.Monitor.Dispatch(recv); resp.Status != api.OK {
				b.Fatal(resp.Status)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msg/s")
	})
	b.Run("batched", func(b *testing.B) {
		sys, ringID, sendPA, recvPA := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i += api.RingMaxBatch {
			n := api.RingMaxBatch
			if rem := b.N - i; n > rem {
				n = rem
			}
			send := api.OSRequest(api.CallRingSend, ringID, sendPA, uint64(n))
			recv := api.OSRequest(api.CallRingRecv, ringID, recvPA, uint64(n))
			if resp := sys.Monitor.Dispatch(send); resp.Status != api.OK || resp.Values[0] != uint64(n) {
				b.Fatalf("send: %v n=%d", resp.Status, resp.Values[0])
			}
			if resp := sys.Monitor.Dispatch(recv); resp.Status != api.OK || resp.Values[0] != uint64(n) {
				b.Fatalf("recv: %v n=%d", resp.Status, resp.Values[0])
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msg/s")
	})
}

// BenchmarkGatewayServe is the end-to-end serving number for E16: echo
// requests through the full stack — gateway batching, ring sends,
// park/wake, pool-cloned enclave workers under the OS scheduler,
// stamped responses. ns/op is per request; req/s is the headline.
// BenchmarkGatewayServe runs the gateway echo workload twice — with
// the telemetry plane wired (the default) and with it compiled out
// (DisableTelemetry) — as tracked absolute baselines for both modes.
// The ≤5% overhead gate is NOT the ratio of these two rows (separate
// rows drift apart on a shared host); it reads the interleaved
// BenchmarkTelemetryOverhead row below.
func BenchmarkGatewayServe(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"telemetry", false}, {"notelemetry", true}} {
		b.Run(tc.name, func(b *testing.B) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{
				Kind:             sanctorum.Sanctum,
				DisableTelemetry: tc.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			regions := sys.OS.FreeRegions()
			spec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil, regions[:1], nil)
			if err != nil {
				b.Fatal(err)
			}
			pool, err := sys.NewPool(spec, regions[1:3], 1)
			if err != nil {
				b.Fatal(err)
			}
			gw, err := sys.NewGateway(pool, sanctorum.GatewayConfig{
				Workers: 2,
				Sched:   sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
			})
			if err != nil {
				b.Fatal(err)
			}
			const wave = 32
			reqs := make([][]byte, wave)
			for i := range reqs {
				msg := make([]byte, api.RingMsgSize)
				msg[0] = byte(i)
				reqs[i] = msg
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += wave {
				n := wave
				if rem := b.N - i; n > rem {
					n = rem
				}
				if _, err := gw.Process(reqs[:n]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			if err := gw.Close(); err != nil {
				b.Fatal(err)
			}
			if err := pool.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- E19: fleet aggregate serving throughput (DESIGN.md §12) ---

// BenchmarkFleetServe is E19's headline: the same echo workload served
// by a 1-shard and a 4-shard fleet, shards running concurrently (one
// goroutine per machine). ns/op is per request, so the shards=1 /
// shards=4 ns ratio is the aggregate scaling factor the CI gate
// checks. Each sub-benchmark also reports the harness's GOMAXPROCS as
// "cpus": shard concurrency is real OS-thread parallelism, so the
// achievable ratio depends on the host's cores and the gate keys its
// floor on this metric.
// The notelemetry sub-benchmark mirrors shards=1 with the telemetry
// plane compiled out, as a tracked absolute baseline; the ≤5%
// overhead enforcement reads the interleaved
// BenchmarkTelemetryOverhead row instead (see its comment).
func BenchmarkFleetServe(b *testing.B) {
	for _, tc := range []struct {
		name    string
		shards  int
		disable bool
	}{
		{"shards=1", 1, false},
		{"shards=4", 4, false},
		{"notelemetry", 1, true},
	} {
		shards := tc.shards
		b.Run(tc.name, func(b *testing.B) {
			f, err := sanctorum.NewFleet(sanctorum.FleetOptions{
				Kind:   sanctorum.Sanctum,
				Shards: shards,
				Config: sanctorum.FleetConfig{
					Parallel: true,
					Sched:    sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
				},
				DisableTelemetry: tc.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			wave := 32 * shards
			sessions := 8 * shards
			reqs := make([]sanctorum.FleetRequest, wave)
			for i := range reqs {
				msg := make([]byte, api.RingMsgSize)
				msg[0] = byte(i)
				reqs[i] = sanctorum.FleetRequest{
					Session: uint64(i%sessions) * 0x9E3779B97F4A7C15,
					Payload: msg,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += wave {
				n := wave
				if rem := b.N - i; n > rem {
					n = rem
				}
				if _, err := f.Process(reqs[:n]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
		})
	}
}

// --- E20: telemetry instrumentation overhead (DESIGN.md §13) ---

// BenchmarkTelemetryOverhead resolves the telemetry plane's cost the
// only way a ≤5% effect survives a shared host: both sides inside ONE
// benchmark. Separate rows run in separate time windows, and
// host-speed drift between windows reaches ±15% — three times the
// effect under test (the same reason E18's block-tier ratio check is
// interleaved). Each iteration serves one wave through a telemetry-on
// stack and the same wave through an identical DisableTelemetry
// stack, alternating, so drift hits both halves equally and cancels
// from the ratio. The halves are reported as "on-ns/req" and
// "off-ns/req" on the single row; the benchjson gate holds
// off/on ≥ 0.95 (instrumentation within 5%). The notelemetry
// sub-benchmarks of BenchmarkGatewayServe / BenchmarkFleetServe stay
// as tracked absolute baselines; enforcement lives here.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("gateway", func(b *testing.B) {
		const wave = 32
		type half struct {
			gw   *os.Gateway
			pool *os.Pool
			reqs [][]byte
		}
		mk := func(disable bool) half {
			sys, err := sanctorum.NewSystem(sanctorum.Options{
				Kind:             sanctorum.Sanctum,
				DisableTelemetry: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			regions := sys.OS.FreeRegions()
			spec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil, regions[:1], nil)
			if err != nil {
				b.Fatal(err)
			}
			pool, err := sys.NewPool(spec, regions[1:3], 1)
			if err != nil {
				b.Fatal(err)
			}
			gw, err := sys.NewGateway(pool, sanctorum.GatewayConfig{
				Workers: 2,
				Sched:   sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
			})
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([][]byte, wave)
			for i := range reqs {
				msg := make([]byte, api.RingMsgSize)
				msg[0] = byte(i)
				reqs[i] = msg
			}
			return half{gw: gw, pool: pool, reqs: reqs}
		}
		on, off := mk(false), mk(true)
		serve := func(h half, n int) time.Duration {
			start := time.Now()
			if _, err := h.gw.Process(h.reqs[:n]); err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		for i := 0; i < 4; i++ { // warm both stacks identically
			serve(on, wave)
			serve(off, wave)
		}
		var tOn, tOff time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i += wave {
			n := wave
			if rem := b.N - i; n > rem {
				n = rem
			}
			tOn += serve(on, n)
			tOff += serve(off, n)
		}
		b.StopTimer()
		b.ReportMetric(float64(tOn.Nanoseconds())/float64(b.N), "on-ns/req")
		b.ReportMetric(float64(tOff.Nanoseconds())/float64(b.N), "off-ns/req")
		for _, h := range []half{on, off} {
			if err := h.gw.Close(); err != nil {
				b.Fatal(err)
			}
			if err := h.pool.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fleet", func(b *testing.B) {
		const wave, sessions = 32, 8
		type half struct {
			f    *sanctorum.Fleet
			reqs []sanctorum.FleetRequest
		}
		mk := func(disable bool) half {
			f, err := sanctorum.NewFleet(sanctorum.FleetOptions{
				Kind:   sanctorum.Sanctum,
				Shards: 1,
				Config: sanctorum.FleetConfig{
					Parallel: true,
					Sched:    sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
				},
				DisableTelemetry: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([]sanctorum.FleetRequest, wave)
			for i := range reqs {
				msg := make([]byte, api.RingMsgSize)
				msg[0] = byte(i)
				reqs[i] = sanctorum.FleetRequest{
					Session: uint64(i%sessions) * 0x9E3779B97F4A7C15,
					Payload: msg,
				}
			}
			return half{f: f, reqs: reqs}
		}
		on, off := mk(false), mk(true)
		defer on.f.Close()
		defer off.f.Close()
		serve := func(h half, n int) time.Duration {
			start := time.Now()
			if _, err := h.f.Process(h.reqs[:n]); err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		for i := 0; i < 4; i++ { // warm both fleets identically
			serve(on, wave)
			serve(off, wave)
		}
		var tOn, tOff time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i += wave {
			n := wave
			if rem := b.N - i; n > rem {
				n = rem
			}
			tOn += serve(on, n)
			tOff += serve(off, n)
		}
		b.StopTimer()
		b.ReportMetric(float64(tOn.Nanoseconds())/float64(b.N), "on-ns/req")
		b.ReportMetric(float64(tOff.Nanoseconds())/float64(b.N), "off-ns/req")
	})
}

// --- E15: snapshot/clone cold start (DESIGN.md §8) ---

// BenchmarkCloneColdStart compares bringing up a request-serving
// worker the two ways: a full measured build (create → grant → tables
// → load + hash every page → init) versus a copy-on-write clone of a
// warmed snapshot template (tables replayed, data pages aliased,
// identity inherited — nothing copied, nothing hashed). Both sides pay
// the same teardown (delete, scrub, re-grant), so the ratio understates
// the fork advantage.
func BenchmarkCloneColdStart(b *testing.B) {
	const pages = 24
	makeSpec := func(l enclaves.Layout, regions []int) *os.EnclaveSpec {
		spec := &os.EnclaveSpec{EvBase: l.EvBase, EvMask: l.EvMask, Regions: regions}
		content := make([]byte, mem.PageSize)
		for p := 0; p < pages; p++ {
			content[0] = byte(p + 1)
			spec.Pages = append(spec.Pages, os.EnclavePage{
				VA: l.EvBase + uint64(p)*mem.PageSize, Perms: pt.R | pt.W,
				Data: append([]byte(nil), content...),
			})
		}
		spec.Threads = []os.ThreadSpec{{EntryVA: l.EvBase, StackVA: l.EvBase + pages*mem.PageSize}}
		return spec
	}
	b.Run("full-build", func(b *testing.B) {
		sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
		l := enclaves.DefaultLayout()
		regions := sys.OS.FreeRegions()
		spec := makeSpec(l, regions[:1])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			built, err := sys.BuildEnclave(spec)
			if err != nil {
				b.Fatal(err)
			}
			teardown(b, sys, built, spec.Regions)
		}
	})
	b.Run("clone", func(b *testing.B) {
		sys := mustSystem(b, sanctorum.Sanctum, [32]byte{})
		l := enclaves.DefaultLayout()
		regions := sys.OS.FreeRegions()
		spec := makeSpec(l, regions[:1])
		pool, err := os.NewPool(sys.OS, spec, regions[1:2], 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, err := pool.Acquire(0)
			if err != nil {
				b.Fatal(err)
			}
			if err := pool.Release(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}
