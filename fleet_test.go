// End-to-end tests for the fleet layer (DESIGN.md §12): multi-machine
// sharding behind the distributed gateway, session rebalancing, and
// cross-machine attested channels.
package sanctorum_test

import (
	"fmt"
	"testing"

	"sanctorum"
	"sanctorum/internal/enclaves"
)

func fleetRequests(n, sessions int) []sanctorum.FleetRequest {
	reqs := make([]sanctorum.FleetRequest, n)
	for i := range reqs {
		// Spread keys: a multiplicative hash so consecutive sessions
		// land on unrelated ring arcs.
		key := uint64(i%sessions) * 0x9E3779B97F4A7C15
		reqs[i] = sanctorum.FleetRequest{Session: key, Payload: echoPayload(i)}
	}
	return reqs
}

func checkEcho(t *testing.T, reqs []sanctorum.FleetRequest, resps [][]byte) {
	t.Helper()
	for i := range reqs {
		want := enclaves.RingEchoExpected(reqs[i].Payload)
		if string(resps[i]) != string(want) {
			t.Fatalf("response %d = %x, want %x", i, resps[i][:16], want[:16])
		}
	}
}

// TestFleetServe serves an echo workload through a two-shard fleet on
// every platform backend: requests consistent-hash to shards by
// session, each shard's key-affinity gateway serves its batch, and
// responses come back in request order.
func TestFleetServe(t *testing.T) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		t.Run(kind.String(), func(t *testing.T) {
			f, err := sanctorum.NewFleet(sanctorum.FleetOptions{Kind: kind, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			reqs := fleetRequests(41, 12) // odd on purpose: partial chunks
			resps, err := f.Process(reqs)
			if err != nil {
				t.Fatal(err)
			}
			checkEcho(t, reqs, resps)
			if f.Served != 41 {
				t.Fatalf("fleet served %d, want 41", f.Served)
			}
			// Both shards should hold sessions: 12 well-spread keys on a
			// 2-shard ring do not all land on one arc.
			used := 0
			for _, st := range f.Stats() {
				if st.Sessions > 0 {
					used++
				}
			}
			if used != 2 {
				t.Fatalf("sessions concentrated on %d of 2 shards", used)
			}
		})
	}
}

// TestFleetRequestTraceChain arms the tracer for one request of a
// TestFleetServe-style workload and requires the complete span chain —
// router → shard → gateway → ring → worker → ring → gateway — with
// every child nested inside its parent's cycle window, begin stamps
// monotone in span order, and a byte-stable rendering. The stamps are
// simulated cycles, so this chain is as reproducible as the workload.
func TestFleetRequestTraceChain(t *testing.T) {
	f, err := sanctorum.NewFleet(sanctorum.FleetOptions{Kind: sanctorum.Sanctum, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs := fleetRequests(41, 12)
	tr := f.TraceNextRequest()
	resps, err := f.Process(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkEcho(t, reqs, resps)

	spans := tr.Spans()
	wantLayers := []string{"router", "router", "shard", "gateway", "ring", "worker", "ring", "gateway"}
	if len(spans) != len(wantLayers) {
		t.Fatalf("trace has %d spans, want %d:\n%s", len(spans), len(wantLayers), tr.Render())
	}
	byID := map[int]int{}
	for i, s := range spans {
		byID[s.ID] = i
	}
	var prevBegin uint64
	for i, s := range spans {
		if s.Layer != wantLayers[i] {
			t.Fatalf("span %d layer %q, want %q:\n%s", i, s.Layer, wantLayers[i], tr.Render())
		}
		if s.End < s.Begin {
			t.Fatalf("span %d (%s/%s) never closed: [%d, %d]", i, s.Layer, s.Name, s.Begin, s.End)
		}
		if i > 0 && s.Begin < prevBegin {
			t.Fatalf("span %d begins at %d, before predecessor's %d", i, s.Begin, prevBegin)
		}
		prevBegin = s.Begin
		if i == 0 {
			if s.Parent != -1 {
				t.Fatalf("root span has parent %d", s.Parent)
			}
			continue
		}
		pi, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d (%s/%s) has unknown parent %d", i, s.Layer, s.Name, s.Parent)
		}
		p := spans[pi]
		if s.Begin < p.Begin || s.End > p.End {
			t.Fatalf("span %d (%s/%s) [%d, %d] escapes parent %s/%s [%d, %d]",
				i, s.Layer, s.Name, s.Begin, s.End, p.Layer, p.Name, p.Begin, p.End)
		}
	}
	// The root must span real simulated work, and the worker span must
	// sit strictly inside it — an enclave executes between dispatch and
	// response, and that execution retires cycles.
	root, worker := spans[0], spans[5]
	if root.End <= root.Begin {
		t.Fatalf("root span is empty: [%d, %d]", root.Begin, root.End)
	}
	if worker.End <= worker.Begin {
		t.Fatalf("worker execute span retired no cycles: [%d, %d]", worker.Begin, worker.End)
	}
	if a, b := tr.Render(), tr.Render(); a != b {
		t.Fatal("trace rendering is not stable")
	}
}

// TestFleetSessionRebalance drains a shard and requires the rebalance
// contract: every one of its sessions re-homes onto a live shard, each
// inheriting shard warmed one extra snapshot-clone worker before the
// cutover, and the same sessions keep being served correctly after.
func TestFleetSessionRebalance(t *testing.T) {
	f, err := sanctorum.NewFleet(sanctorum.FleetOptions{
		Kind:   sanctorum.Sanctum,
		Shards: 3,
		// Two spare clone regions per shard: this test drains twice, and
		// a shard may inherit (and so warm a worker) both times.
		Config: sanctorum.FleetConfig{SpareWorkers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs := fleetRequests(48, 16)
	if _, err := f.Process(reqs); err != nil {
		t.Fatal(err)
	}

	// Drain the most-loaded shard, so the move set is non-trivial.
	victim, most := 0, -1
	for i, st := range f.Stats() {
		if st.Sessions > most {
			victim, most = i, st.Sessions
		}
	}
	before := f.Stats()
	moved, err := f.Drain(victim)
	if err != nil {
		t.Fatal(err)
	}
	if moved != most {
		t.Fatalf("drain moved %d sessions, victim held %d", moved, most)
	}
	after := f.Stats()
	if !after[victim].Draining || after[victim].Sessions != 0 {
		t.Fatalf("victim after drain: %+v", after[victim])
	}
	inherited := 0
	for i := range after {
		if i == victim {
			continue
		}
		gained := after[i].Sessions - before[i].Sessions
		if gained > 0 {
			inherited += gained
			// Warm-before-cutover: an inheriting shard has one more
			// worker than it started with.
			if after[i].Workers != before[i].Workers+1 {
				t.Fatalf("shard %d inherited %d sessions but has %d workers (was %d)",
					i, gained, after[i].Workers, before[i].Workers)
			}
		}
	}
	if inherited != moved {
		t.Fatalf("live shards gained %d sessions, drain moved %d", inherited, moved)
	}
	// Every session must be assigned off the victim now.
	for i := range reqs {
		if s, ok := f.Where(reqs[i].Session); !ok || s == victim {
			t.Fatalf("session %#x on shard %d after drain of %d", reqs[i].Session, s, victim)
		}
	}

	// The same sessions keep serving correctly on their new homes.
	resps, err := f.Process(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkEcho(t, reqs, resps)

	// A second drain of the same shard, and draining the rest down to
	// one live shard, are refused.
	if _, err := f.Drain(victim); err == nil {
		t.Fatal("double drain succeeded")
	}
	others := []int{}
	for i := 0; i < 3; i++ {
		if i != victim {
			others = append(others, i)
		}
	}
	if _, err := f.Drain(others[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Drain(others[1]); err == nil {
		t.Fatal("drained the last live shard")
	}
}

// TestDeterministicFleetReplay runs an identical fleet lifecycle —
// serve, drain, serve again, establish a cross-machine attested
// channel, transfer both ways — on two independently built fleets and
// requires bit-identical observables: responses, session placement,
// channel binding, transferred bytes, and every machine's modeled
// per-core cycle counters.
func TestDeterministicFleetReplay(t *testing.T) {
	type observables struct {
		resps1, resps2 [][]byte
		placement      []string
		binding        [32]byte
		msgs           [][]byte
		cycles         []uint64
		trace          string
		metrics        string
	}
	run := func() observables {
		f, err := sanctorum.NewFleet(sanctorum.FleetOptions{Kind: sanctorum.Sanctum, Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var o observables
		reqs := fleetRequests(36, 12)
		// Tracing rides along: the first request of the first wave
		// carries a trace context through every layer, and because span
		// stamps are simulated cycles the rendered trace — like every
		// number in the metrics snapshot — must replay bit-identically.
		tr := f.TraceNextRequest()
		if o.resps1, err = f.Process(reqs); err != nil {
			t.Fatal(err)
		}
		o.trace = tr.Render()
		if _, err := f.Drain(1); err != nil {
			t.Fatal(err)
		}
		if o.resps2, err = f.Process(reqs); err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			s, _ := f.Where(reqs[i].Session)
			o.placement = append(o.placement, fmt.Sprintf("%x:%d", reqs[i].Session, s))
		}
		ch, err := f.Connect(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		o.binding = ch.Binding
		for _, dir := range []struct {
			from int
			msg  string
		}{{0, "fleet ping"}, {2, "fleet pong"}} {
			got, err := ch.Transfer(dir.from, []byte(dir.msg))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != dir.msg {
				t.Fatalf("transfer from %d delivered %q", dir.from, got)
			}
			o.msgs = append(o.msgs, got)
		}
		for s := 0; s < f.NumShards(); s++ {
			for _, c := range f.Host(s).Machine.Cores {
				o.cycles = append(o.cycles, c.CPU.Cycles)
			}
		}
		o.metrics = f.Telemetry().Snapshot().Text()
		return o
	}
	a, b := run(), run()
	if fmt.Sprint(a.resps1) != fmt.Sprint(b.resps1) || fmt.Sprint(a.resps2) != fmt.Sprint(b.resps2) {
		t.Fatal("responses diverged between replays")
	}
	if fmt.Sprint(a.placement) != fmt.Sprint(b.placement) {
		t.Fatalf("session placement diverged:\n%v\n%v", a.placement, b.placement)
	}
	if a.binding != b.binding {
		t.Fatalf("channel binding diverged: %x vs %x", a.binding, b.binding)
	}
	if fmt.Sprint(a.msgs) != fmt.Sprint(b.msgs) {
		t.Fatal("transferred messages diverged")
	}
	if fmt.Sprint(a.cycles) != fmt.Sprint(b.cycles) {
		t.Fatalf("modeled cycles diverged:\n%v\n%v", a.cycles, b.cycles)
	}
	if a.trace != b.trace {
		t.Fatalf("traced-request spans diverged between replays:\n%s\nvs\n%s", a.trace, b.trace)
	}
	if a.metrics != b.metrics {
		t.Fatalf("metrics snapshots diverged between replays:\n%s\nvs\n%s", a.metrics, b.metrics)
	}
}

// TestFleetParallelServing serves through four shards concurrently —
// one goroutine per shard, each shard's scheduler itself parallel —
// which puts the routing tier's counters and the per-shard gateways
// under -race in CI.
func TestFleetParallelServing(t *testing.T) {
	f, err := sanctorum.NewFleet(sanctorum.FleetOptions{
		Kind:   sanctorum.Sanctum,
		Shards: 4,
		Config: sanctorum.FleetConfig{
			Parallel: true,
			Sched: sanctorum.SchedConfig{
				Mode:          sanctorum.Parallel,
				QuantumCycles: 10_000,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs := fleetRequests(128, 32)
	resps, err := f.Process(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkEcho(t, reqs, resps)
	if f.Served != 128 {
		t.Fatalf("fleet served %d, want 128", f.Served)
	}
}
