// Multi-hart scheduling integration tests: the OS scheduler timeshares
// enclave threads across cores through the monitor's transactional API,
// in deterministic mode (bit-reproducible) and parallel mode (goroutine
// per core, run under -race by CI). The parallel stress test is the
// §V-A artifact: ≥4 enclave threads across 4 cores with contended
// monitor transactions observing api.ErrRetry.
package sanctorum_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/isa"
	ios "sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// workerFarm builds nEnclaves enclaves running the Worker kernel with
// threadsPer threads each, gives every enclave its own shared page,
// and writes iteration count n into each enclave's ShInput. It returns
// the tasks and a verify func checking every thread's published result.
func workerFarm(t *testing.T, sys *sanctorum.System, nEnclaves, threadsPer int, n uint64) ([]sanctorum.Task, func()) {
	t.Helper()
	regions := sys.OS.FreeRegions()
	if len(regions) < nEnclaves {
		t.Fatalf("need %d free regions, have %d", nEnclaves, len(regions))
	}
	var tasks []sanctorum.Task
	type check struct {
		sharedPA uint64
		slot     int
	}
	var checks []check
	for e := 0; e < nEnclaves; e++ {
		l := enclaves.DefaultLayout()
		l.SharedVA = 0x50000000 + uint64(e)*0x10000
		sharedPA, err := sys.SetupShared(l.SharedVA)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := enclaves.SpecN(l, enclaves.Worker(l), nil, regions[e:e+1],
			[]ios.SharedMapping{{VA: l.SharedVA, PA: sharedPA}}, threadsPer)
		if err != nil {
			t.Fatal(err)
		}
		built, err := sys.BuildEnclave(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SharedWriteWord(sharedPA, enclaves.ShInput, n); err != nil {
			t.Fatal(err)
		}
		for ti, tid := range built.TIDs {
			tasks = append(tasks, sanctorum.Task{EID: built.EID, TID: tid})
			checks = append(checks, check{
				sharedPA: sharedPA,
				slot:     enclaves.WorkerSlot(spec.Threads[ti].StackVA),
			})
		}
	}
	want := enclaves.WorkerExpected(n)
	verify := func() {
		t.Helper()
		for i, ck := range checks {
			got, err := sys.SharedReadWord(ck.sharedPA, enclaves.ShOutput+ck.slot)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("task %d published %#x, want %#x", i, got, want)
			}
		}
	}
	return tasks, verify
}

func checkResults(t *testing.T, results []sanctorum.TaskResult, wantPreempted bool) {
	t.Helper()
	preempted := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("task %d: %v", i, r.Err)
		}
		if r.Reason != machine.StopReturnToOS || r.TrapCause != isa.CauseECallU {
			t.Fatalf("task %d ended %v/%v, want clean exit", i, r.Reason, r.TrapCause)
		}
		if r.ExitValue != enclaves.WorkerExitStatus {
			t.Fatalf("task %d exit value %#x", i, r.ExitValue)
		}
		if r.Steps == 0 {
			t.Fatalf("task %d retired no instructions", i)
		}
		preempted += r.Preemptions
	}
	if wantPreempted && preempted == 0 {
		t.Error("no task was ever preempted despite the quantum")
	}
}

// TestRunAllDeterministic timeshares three worker threads over two
// cores with timer preemption and requires (a) correct results after
// arbitrary many AEX/resume cycles and (b) bit-identical scheduling on
// a second, identically-built system.
func TestRunAllDeterministic(t *testing.T) {
	run := func() []sanctorum.TaskResult {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
		if err != nil {
			t.Fatal(err)
		}
		tasks, verify := workerFarm(t, sys, 3, 1, 20_000)
		cfg := sanctorum.SchedConfig{
			Mode:          sanctorum.Deterministic,
			QuantumCycles: 30_000,
			SliceSteps:    7_000,
		}
		results := sys.RunAll(cfg, tasks)
		verify()
		return results
	}
	a, b := run(), run()
	checkResults(t, a, true)
	if len(a) != len(b) {
		t.Fatalf("runs returned %d vs %d results", len(a), len(b))
	}
	for i := range a {
		if a[i].Steps != b[i].Steps || a[i].Preemptions != b[i].Preemptions ||
			a[i].ExitValue != b[i].ExitValue {
			t.Fatalf("deterministic mode diverged at task %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRunAllParallelStress is the acceptance stress test: two enclaves
// with two worker threads each — four enclave threads — scheduled in
// parallel across four cores with timer preemption, while untrusted-OS
// goroutines hammer region transactions on a spare region. Requires
// every task to finish correctly under -race and at least one monitor
// transaction to fail with api.ErrRetry (§V-A contention observed).
func TestRunAllParallelStress(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	tasks, verify := workerFarm(t, sys, 2, 2, 30_000)
	if len(tasks) != 4 {
		t.Fatalf("built %d tasks, want 4", len(tasks))
	}
	// Created before the hammers start, so the machine is latched into
	// concurrent operation before any goroutine races the monitor.
	sched := sys.NewScheduler(sanctorum.SchedConfig{
		Mode:          sanctorum.Parallel,
		QuantumCycles: 25_000,
		SliceSteps:    5_000,
	})

	// Region hammer: goroutine A walks a spare region through
	// block→clean→grant (clean holds the region lock for the whole
	// scrub + IPI shootdown), goroutine B probes it; B's TryLock misses
	// land in A's window and surface as ErrRetry.
	spare := sys.OS.FreeRegions()
	spareRegion := spare[len(spare)-1]
	var retries atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(work func() api.Error) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if work() == api.ErrRetry {
				retries.Add(1)
			}
		}
	}
	wg.Add(2)
	// The hammers speak the unified ABI single-shot (client Try, no
	// retry absorption) so every ErrRetry is observed here.
	try := func(c api.Call, args ...uint64) api.Error {
		return sys.OS.SM.Try(api.OSRequest(c, args...)).Status
	}
	go hammer(func() api.Error {
		if st := try(api.CallBlockRegion, uint64(spareRegion)); st != api.OK {
			return st
		}
		for try(api.CallCleanRegion, uint64(spareRegion)) != api.OK {
		}
		for try(api.CallGrantRegion, uint64(spareRegion), api.DomainOS) != api.OK {
		}
		return api.OK
	})
	go hammer(func() api.Error {
		return try(api.CallRegionInfo, uint64(spareRegion))
	})

	results := sched.RunAll(tasks)
	close(stop)
	wg.Wait()

	checkResults(t, results, true)
	verify()

	total := retries.Load() + sched.Retries()
	if total == 0 {
		t.Fatal("no monitor transaction ever failed with ErrRetry under parallel contention")
	}
	t.Logf("parallel stress: %d scheduler retries, %d hammer retries, preemptions per task: %d/%d/%d/%d",
		sched.Retries(), retries.Load(),
		results[0].Preemptions, results[1].Preemptions,
		results[2].Preemptions, results[3].Preemptions)

	// The spare region must have come out of the storm in a legal
	// final state.
	stRegion, owner, err := sys.OS.SM.RegionInfo(spareRegion)
	if err != nil {
		t.Fatalf("final region info: %v", err)
	}
	if owner != api.DomainOS {
		t.Fatalf("spare region ended owned by %#x", owner)
	}
	_ = stRegion
}

// TestServeStreamsTasks feeds tasks through the Serve channel in
// parallel mode — the long-running "system under load" entry point.
func TestServeStreamsTasks(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	tasks, verify := workerFarm(t, sys, 4, 1, 10_000)
	ch := make(chan sanctorum.Task)
	go func() {
		for _, task := range tasks {
			ch <- task
		}
		close(ch)
	}()
	results := sys.Serve(sanctorum.SchedConfig{
		Mode:          sanctorum.Parallel,
		QuantumCycles: 40_000,
	}, ch)
	if len(results) != len(tasks) {
		t.Fatalf("served %d results for %d tasks", len(results), len(tasks))
	}
	checkResults(t, results, false)
	verify()
}

// TestRunAllKeystone runs the deterministic scheduler on the Keystone
// backend, exercising PMP reprogramming across timeshared entries.
func TestRunAllKeystone(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Keystone})
	if err != nil {
		t.Fatal(err)
	}
	tasks, verify := workerFarm(t, sys, 2, 1, 15_000)
	results := sys.RunAll(sanctorum.SchedConfig{
		Mode:          sanctorum.Deterministic,
		QuantumCycles: 30_000,
	}, tasks)
	checkResults(t, results, true)
	verify()
}
