package sanctorum_test

import (
	"bytes"
	"crypto/rand"
	"testing"

	"sanctorum"
	"sanctorum/internal/attest"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

var allKinds = []struct {
	name string
	kind sanctorum.Kind
}{
	{"sanctum", sanctorum.Sanctum},
	{"keystone", sanctorum.Keystone},
	{"baseline", sanctorum.Baseline},
}

func TestQuickstartAdderAllPlatforms(t *testing.T) {
	for _, pk := range allKinds {
		t.Run(pk.name, func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: pk.kind})
			if err != nil {
				t.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			sharedPA, err := sys.SetupShared(l.SharedVA)
			if err != nil {
				t.Fatal(err)
			}
			regions := sys.OS.FreeRegions()
			spec, err := enclaves.Spec(l, enclaves.Adder(l), nil, regions[:1],
				[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
			if err != nil {
				t.Fatal(err)
			}
			built, err := sys.BuildEnclave(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.SharedWriteWord(sharedPA, enclaves.ShInput, 10); err != nil {
				t.Fatal(err)
			}
			res, err := sys.Enter(0, built.EID, built.TIDs[0], 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reason.String() != "return-to-os" {
				t.Fatalf("stop reason: %+v", res)
			}
			// The enclave's chosen exit status is delivered in a0.
			if got := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); got != 0x42 {
				t.Fatalf("exit status = %#x", got)
			}
			sum, err := sys.SharedReadWord(sharedPA, enclaves.ShOutput)
			if err != nil {
				t.Fatal(err)
			}
			if sum != 55 {
				t.Fatalf("sum = %d, want 55", sum)
			}
			// The core is clean: no enclave mode, registers scrubbed
			// except the sanctioned a0.
			c := sys.Machine.Cores[0]
			if c.EnclaveMode {
				t.Fatal("core left in enclave mode")
			}
			for r := 1; r < isa.NumRegs; r++ {
				if r != isa.RegA0 && c.CPU.Regs[r] != 0 {
					t.Fatalf("register x%d leaked %#x to the OS", r, c.CPU.Regs[r])
				}
			}
		})
	}
}

func TestMeasurementMatchesVerifierReplay(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.Spec(l, enclaves.Adder(l), []byte{1, 2, 3}, regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		t.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	if built.Measurement != os.ExpectedMeasurement(spec) {
		t.Fatal("monitor measurement does not match the verifier's transcript replay")
	}
	// The replay is placement-independent: a second build of the same
	// spec into different regions measures identically.
	spec2 := *spec
	spec2.Regions = regions[1:2]
	built2, err := sys.BuildEnclave(&spec2)
	if err != nil {
		t.Fatal(err)
	}
	if built2.Measurement != built.Measurement {
		t.Fatal("physical placement leaked into the measurement")
	}
}

func TestAEXAndResume(t *testing.T) {
	for _, pk := range allKinds[:2] { // sanctum + keystone
		t.Run(pk.name, func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: pk.kind})
			if err != nil {
				t.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			sharedPA, _ := sys.SetupShared(l.SharedVA)
			regions := sys.OS.FreeRegions()
			spec, err := enclaves.Spec(l, enclaves.Counter(l), nil, regions[:1],
				[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
			if err != nil {
				t.Fatal(err)
			}
			built, err := sys.BuildEnclave(spec)
			if err != nil {
				t.Fatal(err)
			}
			// First slice: de-schedule via the core timer.
			if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
				t.Fatalf("enter: %v", st)
			}
			core := sys.Machine.Cores[0]
			core.TimerCmp = core.CPU.Cycles + 3000
			res, err := sys.Machine.Run(0, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trap == nil || !res.Trap.Cause.IsInterrupt() {
				t.Fatalf("expected interrupt delegation, got %+v", res)
			}
			c1, _ := sys.SharedReadWord(sharedPA, enclaves.ShCounter)
			if c1 == 0 {
				t.Fatal("counter never ran")
			}
			// Registers must not leak enclave state to the OS on AEX.
			for r := 1; r < isa.NumRegs; r++ {
				if core.CPU.Regs[r] != 0 {
					t.Fatalf("x%d leaked %#x across AEX", r, core.CPU.Regs[r])
				}
			}
			// Second slice, short: a restarted counter could not reach
			// c1 again, so progress proves the AEX context resumed.
			if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
				t.Fatalf("re-enter: %v", st)
			}
			core.TimerCmp = core.CPU.Cycles + 1500
			if _, err := sys.Machine.Run(0, int(c1)); err != nil {
				t.Fatal(err)
			}
			c2, _ := sys.SharedReadWord(sharedPA, enclaves.ShCounter)
			if c2 <= c1 {
				t.Fatalf("counter did not resume: %d -> %d", c1, c2)
			}
		})
	}
}

func TestOSCannotTouchEnclaveOrMonitorMemory(t *testing.T) {
	for _, pk := range allKinds[:2] {
		t.Run(pk.name, func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: pk.kind})
			if err != nil {
				t.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			sharedPA, _ := sys.SetupShared(l.SharedVA)
			regions := sys.OS.FreeRegions()
			encRegion := regions[0]
			spec, _ := enclaves.Spec(l, enclaves.Adder(l), []byte("secret!"), regions[:1],
				[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
			if _, err := sys.BuildEnclave(spec); err != nil {
				t.Fatal(err)
			}
			core := sys.Machine.Cores[1]
			encBase := sys.Machine.DRAM.Base(encRegion)
			if _, err := core.LoadAs(isa.PrivS, encBase, 8); err == nil {
				t.Fatal("OS read enclave memory")
			}
			if err := core.StoreAs(isa.PrivS, encBase, 8, 0xBAD); err == nil {
				t.Fatal("OS wrote enclave memory")
			}
			metaBase := sys.Machine.DRAM.Base(sys.MetaRegion)
			if _, err := core.LoadAs(isa.PrivS, metaBase, 8); err == nil {
				t.Fatal("OS read monitor metadata")
			}
			smBase := sys.Machine.DRAM.Base(sys.SMRegion)
			if _, err := core.LoadAs(isa.PrivS, smBase, 8); err == nil {
				t.Fatal("OS read monitor memory")
			}
			// DMA is confined to OS memory in every mode.
			if err := sys.Machine.DMATransfer(encBase, sharedPA, 64); err == nil {
				t.Fatal("DMA read enclave memory")
			}
			if err := sys.Machine.DMATransfer(sharedPA, encBase, 64); err == nil {
				t.Fatal("DMA wrote enclave memory")
			}
			if err := sys.Machine.DMATransfer(sharedPA, sharedPA+128, 64); err != nil {
				t.Fatalf("benign DMA denied: %v", err)
			}
		})
	}
}

func TestBaselinePlatformIsInsecure(t *testing.T) {
	// The control experiment: with no isolation primitive, the same
	// monitor logic cannot stop the OS — the paper's §IV-B requirements
	// are load-bearing.
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	spec, _ := enclaves.Spec(l, enclaves.Adder(l), []byte("secret!"), regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if _, err := sys.BuildEnclave(spec); err != nil {
		t.Fatal(err)
	}
	encBase := sys.Machine.DRAM.Base(regions[0])
	if _, err := sys.Machine.Cores[1].LoadAs(isa.PrivS, encBase, 8); err != nil {
		t.Fatalf("baseline unexpectedly blocked the OS: %v", err)
	}
}

func TestLocalAttestation(t *testing.T) {
	// Fig 6 end to end: E2 (receiver) attests E1 (sender) via the
	// monitor's measurement-stamped mailboxes.
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	lSend := enclaves.DefaultLayout()
	lRecv := enclaves.DefaultLayout()
	lRecv.SharedVA = 0x50002000
	regions := sys.OS.FreeRegions()

	sharedSendPA, _ := sys.SetupShared(lSend.SharedVA)
	sharedRecvPA, _ := sys.SetupShared(lRecv.SharedVA)

	msg := make([]byte, api.MailboxSize)
	copy(msg, "greetings from E1")
	sendSpec, err := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(msg), regions[:1],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})
	if err != nil {
		t.Fatal(err)
	}
	expectedSender := os.ExpectedMeasurement(sendSpec)

	recvSpec, err := enclaves.Spec(lRecv, enclaves.MailReceiver(lRecv),
		enclaves.ReceiverDataInit(expectedSender), regions[1:2],
		[]os.SharedMapping{{VA: lRecv.SharedVA, PA: sharedRecvPA}})
	if err != nil {
		t.Fatal(err)
	}

	sender, err := sys.BuildEnclave(sendSpec)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := sys.BuildEnclave(recvSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sender.Measurement != expectedSender {
		t.Fatal("sender measurement mismatch")
	}

	// Step 1: receiver arms its mailbox for the sender.
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShPeerEID, sender.EID)
	if _, err := sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("accept_mail failed: %v", api.Error(st))
	}
	// Step 2: sender mails its message.
	sys.SharedWriteWord(sharedSendPA, enclaves.ShPeerEID, receiver.EID)
	if _, err := sys.Enter(0, sender.EID, sender.TIDs[0], 100_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("send_mail failed: %v", api.Error(st))
	}
	// Steps 3-4: receiver drains and validates the measurement.
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 1)
	if _, err := sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000); err != nil {
		t.Fatal(err)
	}
	verdict, _ := sys.SharedReadWord(sharedRecvPA, enclaves.ShOutput)
	if verdict != 1 {
		t.Fatalf("verdict = %d, want authentic (1)", verdict)
	}
}

func TestLocalAttestationDetectsImpostor(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	lSend := enclaves.DefaultLayout()
	lRecv := enclaves.DefaultLayout()
	lRecv.SharedVA = 0x50002000
	regions := sys.OS.FreeRegions()
	sharedSendPA, _ := sys.SetupShared(lSend.SharedVA)
	sharedRecvPA, _ := sys.SetupShared(lRecv.SharedVA)

	genuineMsg := make([]byte, api.MailboxSize)
	copy(genuineMsg, "genuine")
	genuineSpec, _ := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(genuineMsg), regions[:1],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})
	expected := os.ExpectedMeasurement(genuineSpec)

	// The impostor runs the same code but different (attacker-chosen)
	// initial data: its measurement necessarily differs.
	impostorMsg := make([]byte, api.MailboxSize)
	copy(impostorMsg, "impostor")
	impostorSpec, _ := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(impostorMsg), regions[:1],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})

	recvSpec, _ := enclaves.Spec(lRecv, enclaves.MailReceiver(lRecv),
		enclaves.ReceiverDataInit(expected), regions[1:2],
		[]os.SharedMapping{{VA: lRecv.SharedVA, PA: sharedRecvPA}})

	impostor, err := sys.BuildEnclave(impostorSpec)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := sys.BuildEnclave(recvSpec)
	if err != nil {
		t.Fatal(err)
	}

	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShPeerEID, impostor.EID)
	sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000)
	sys.SharedWriteWord(sharedSendPA, enclaves.ShPeerEID, receiver.EID)
	sys.Enter(0, impostor.EID, impostor.TIDs[0], 100_000)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 1)
	sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000)
	verdict, _ := sys.SharedReadWord(sharedRecvPA, enclaves.ShOutput)
	if verdict != 2 {
		t.Fatalf("verdict = %d, want mismatch (2): the monitor stamped the impostor's true measurement", verdict)
	}
}

func TestRemoteAttestation(t *testing.T) {
	// Fig 7 end to end, with a real remote verifier.
	lES := enclaves.DefaultLayout()
	lE1 := enclaves.DefaultLayout()
	lE1.SharedVA = 0x50002000

	// The signing enclave's measurement is hard-coded into the monitor
	// at boot; compute it from the spec template (placement-free).
	esTemplate, err := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, nil,
		[]os.SharedMapping{{VA: lES.SharedVA}})
	if err != nil {
		t.Fatal(err)
	}
	signingMeas := os.ExpectedMeasurement(esTemplate)

	sys, err := sanctorum.NewSystem(sanctorum.Options{
		Kind:               sanctorum.Sanctum,
		SigningMeasurement: signingMeas,
	})
	if err != nil {
		t.Fatal(err)
	}
	regions := sys.OS.FreeRegions()
	sharedESPA, _ := sys.SetupShared(lES.SharedVA)
	sharedE1PA, _ := sys.SetupShared(lE1.SharedVA)

	esSpec, _ := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, regions[:1],
		[]os.SharedMapping{{VA: lES.SharedVA, PA: sharedESPA}})
	e1Spec, _ := enclaves.Spec(lE1, enclaves.AttestedClient(lE1),
		enclaves.ClientDataInit(), regions[1:2],
		[]os.SharedMapping{{VA: lE1.SharedVA, PA: sharedE1PA}})
	expectedE1 := os.ExpectedMeasurement(e1Spec)

	es, err := sys.BuildEnclave(esSpec)
	if err != nil {
		t.Fatal(err)
	}
	if es.Measurement != signingMeas {
		t.Fatal("signing enclave measurement drifted from the boot-time constant")
	}
	e1, err := sys.BuildEnclave(e1Spec)
	if err != nil {
		t.Fatal(err)
	}

	// Remote verifier state: key agreement + nonce (Fig 7 steps 1-2).
	verifierKA, err := attest.NewKeyAgreement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var nonce [attest.NonceSize]byte
	rand.Read(nonce[:])

	// OS transports public values and schedules everything.
	sys.SharedWriteWord(sharedESPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedESPA, enclaves.ShPeerEID, e1.EID)
	if _, err := sys.Enter(0, es.EID, es.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("ES accept_mail: %v", api.Error(st))
	}

	sys.SharedWriteWord(sharedE1PA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedE1PA, enclaves.ShPeerEID, es.EID)
	sys.SharedWrite(sharedE1PA+enclaves.ShNonce, nonce[:])
	if _, err := sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("E1 phase 0: %v", api.Error(st))
	}

	sys.SharedWriteWord(sharedESPA, enclaves.ShInput, 1)
	if _, err := sys.Enter(0, es.EID, es.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("ES phase 1: %v", api.Error(st))
	}

	sys.SharedWriteWord(sharedE1PA, enclaves.ShInput, 1)
	sys.SharedWrite(sharedE1PA+enclaves.ShPeerKA, verifierKA.Share())
	if _, err := sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("E1 phase 1: %v", api.Error(st))
	}

	// The verifier receives the evidence over the untrusted channel
	// (Fig 7 step 8) and verifies it (step 9).
	share, _ := sys.SharedRead(sharedE1PA+enclaves.ShShare, 32)
	sig, _ := sys.SharedRead(sharedE1PA+enclaves.ShSig, 64)
	chain, st := sys.Monitor.GetField(api.FieldCertChain)
	if st != api.OK {
		t.Fatalf("get_field: %v", st)
	}
	ev := &attest.Evidence{
		EnclaveMeasurement: expectedE1,
		Nonce:              nonce,
		KAShare:            share,
		Signature:          sig,
		CertChain:          chain,
	}
	monitorMeas := sys.Monitor.Identity().Measurement
	pol := attest.Policy{
		TrustedRoot:     sys.TrustedRoot(),
		ExpectedEnclave: expectedE1,
		AcceptMonitor:   func(m []byte) bool { return bytes.Equal(m, monitorMeas[:]) },
	}
	if err := attest.Verify(ev, nonce, pol); err != nil {
		t.Fatalf("remote attestation rejected: %v", err)
	}

	// Step 10: the session key authenticates subsequent traffic.
	sessionKey, err := verifierKA.SessionKey(share)
	if err != nil {
		t.Fatal(err)
	}
	macBytes, _ := sys.SharedRead(sharedE1PA+enclaves.ShMACOut, 32)
	var tag [32]byte
	copy(tag[:], macBytes)
	if !attest.Open(sessionKey, enclaves.SessionPlaintext, tag) {
		t.Fatal("enclave did not derive the same session key as the verifier")
	}

	// Negative: a replayed nonce fails.
	var otherNonce [attest.NonceSize]byte
	rand.Read(otherNonce[:])
	if err := attest.Verify(ev, otherNonce, pol); err == nil {
		t.Fatal("stale evidence accepted under a fresh nonce")
	}
}

func TestEnclavePageFaultDeliveredAndAEXFallback(t *testing.T) {
	// An enclave touching an unmapped VA takes an AEX (no handler
	// registered) and the OS sees the fault — without gaining access to
	// enclave state.
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()

	// A program that dereferences an unmapped private address.
	prog := enclaves.FaultingProgram(l)
	spec, err := enclaves.Spec(l, prog, nil, regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		t.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Enter(0, built.EID, built.TIDs[0], 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || !res.Trap.Cause.IsPageFault() {
		t.Fatalf("expected page fault delegation, got %+v", res)
	}
	core := sys.Machine.Cores[0]
	if core.EnclaveMode {
		t.Fatal("core left in enclave mode after fault AEX")
	}
}

// --- Snapshot & copy-on-write clone (E15, DESIGN.md §8) ---

// TestSnapshotClonePool forks request-serving workers from one
// measured template through the OS pool manager, on every platform:
// each clone starts from the template's measured initial state (a
// running total of 100 in its private data page), diverges privately
// through copy-on-write, and recycles cleanly — page refcounts return
// to zero after teardown.
func TestSnapshotClonePool(t *testing.T) {
	for _, pk := range allKinds {
		t.Run(pk.name, func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: pk.kind})
			if err != nil {
				t.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			tmplShared, err := sys.SetupShared(l.SharedVA)
			if err != nil {
				t.Fatal(err)
			}
			regions := sys.OS.FreeRegions()
			dataInit := make([]byte, 8)
			dataInit[0] = 100 // initial running total
			spec, err := enclaves.Spec(l, enclaves.StatefulAdder(l), dataInit,
				regions[:1], []os.SharedMapping{{VA: l.SharedVA, PA: tmplShared}})
			if err != nil {
				t.Fatal(err)
			}
			pool, err := os.NewPool(sys.OS, spec, regions[1:3], 1)
			if err != nil {
				t.Fatal(err)
			}
			// The snapshot froze pages and holds references.
			if refs := sys.Machine.Mem.TotalRefs(); refs == 0 {
				t.Fatal("snapshot holds no page references")
			}

			run := func(w *os.Worker, input uint64) uint64 {
				t.Helper()
				if err := sys.SharedWriteWord(w.SharedPA, enclaves.ShInput, input); err != nil {
					t.Fatal(err)
				}
				// Point the shared window at this worker's buffer. Under
				// Sanctum, outside-evrange VAs translate through the OS
				// page tables, so the OS remaps SharedVA per worker;
				// under Keystone/baseline the clone's own tables carry
				// the per-clone override from Acquire. Both paths end at
				// w.SharedPA.
				if err := sys.OS.MapUser(l.SharedVA, w.SharedPA, pt.R|pt.W|pt.U); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Enter(0, w.EID, w.TIDs[0], 1_000_000); err != nil {
					t.Fatal(err)
				}
				out, err := sys.SharedReadWord(w.SharedPA, enclaves.ShOutput)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}

			// Two workers with private untrusted buffers.
			buf1, err := sys.OS.AllocPagePA()
			if err != nil {
				t.Fatal(err)
			}
			buf2, err := sys.OS.AllocPagePA()
			if err != nil {
				t.Fatal(err)
			}
			w1, err := pool.Acquire(buf1)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := pool.Acquire(buf2)
			if err != nil {
				t.Fatal(err)
			}
			// Both inherit the template's measurement identity…
			var meas [32]byte
			stagePA, _ := sys.OS.StagePage()
			if _, err := sys.OS.SM.EnclaveStatus(w1.EID, stagePA); err != nil {
				t.Fatal(err)
			}
			m, _ := sys.OS.ReadOwned(stagePA, 32)
			copy(meas[:], m)
			if meas != pool.Template.Measurement {
				t.Fatal("clone measurement differs from template")
			}
			// …and the measurement still matches the verifier replay of
			// the template's spec: fork does not change identity.
			if pool.Template.Measurement != os.ExpectedMeasurement(spec) {
				t.Fatal("template measurement does not match transcript replay")
			}

			// First write hits the COW fault path; state then diverges
			// per clone and persists across entries.
			if got := run(w1, 5); got != 105 {
				t.Fatalf("w1 first run: %d, want 105", got)
			}
			if got := run(w1, 5); got != 110 {
				t.Fatalf("w1 second run: %d, want 110", got)
			}
			if got := run(w2, 7); got != 107 {
				t.Fatalf("w2 run: %d, want 107 (diverged from w1)", got)
			}

			// Recycle both workers, re-acquire: the fresh worker starts
			// from the measured initial state again.
			if err := pool.Release(w1); err != nil {
				t.Fatal(err)
			}
			if err := pool.Release(w2); err != nil {
				t.Fatal(err)
			}
			w3, err := pool.Acquire(buf1)
			if err != nil {
				t.Fatal(err)
			}
			if got := run(w3, 1); got != 101 {
				t.Fatalf("recycled worker run: %d, want 101", got)
			}
			if err := pool.Release(w3); err != nil {
				t.Fatal(err)
			}

			// Teardown: snapshot released, template deleted, and every
			// page refcount back to baseline.
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
			if refs := sys.Machine.Mem.TotalRefs(); refs != 0 {
				t.Fatalf("page refcounts leaked after pool teardown: %d", refs)
			}
		})
	}
}

// TestDeterministicReplay runs the same snapshot/clone scenario on two
// fresh systems and requires bit-identical observables — cycles,
// steps, measurements, outputs. CI runs every TestDeterministic* twice
// (-count=2) to catch within-process nondeterminism too.
func TestDeterministicReplay(t *testing.T) {
	type observables struct {
		meas       [32]byte
		out1, out2 uint64
		steps      int
		cycles     uint64
		tlbHits    uint64
	}
	scenario := func() observables {
		t.Helper()
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
		if err != nil {
			t.Fatal(err)
		}
		l := enclaves.DefaultLayout()
		sharedPA, _ := sys.SetupShared(l.SharedVA)
		regions := sys.OS.FreeRegions()
		dataInit := make([]byte, 8)
		dataInit[0] = 9
		spec, err := enclaves.Spec(l, enclaves.StatefulAdder(l), dataInit,
			regions[:1], []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
		if err != nil {
			t.Fatal(err)
		}
		pool, err := os.NewPool(sys.OS, spec, regions[1:2], 1)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := sys.OS.AllocPagePA()
		if err != nil {
			t.Fatal(err)
		}
		w, err := pool.Acquire(buf)
		if err != nil {
			t.Fatal(err)
		}
		var o observables
		o.meas = pool.Template.Measurement
		if err := sys.OS.MapUser(l.SharedVA, buf, pt.R|pt.W|pt.U); err != nil {
			t.Fatal(err)
		}
		sys.SharedWriteWord(buf, enclaves.ShInput, 4)
		res, err := sys.Enter(0, w.EID, w.TIDs[0], 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		o.steps = res.Steps
		o.out1, _ = sys.SharedReadWord(buf, enclaves.ShOutput)
		sys.SharedWriteWord(buf, enclaves.ShInput, 6)
		if _, err := sys.Enter(0, w.EID, w.TIDs[0], 1_000_000); err != nil {
			t.Fatal(err)
		}
		o.out2, _ = sys.SharedReadWord(buf, enclaves.ShOutput)
		o.cycles = sys.Machine.Cores[0].CPU.Cycles
		o.tlbHits = sys.Machine.Cores[0].TLB.Hits
		if err := pool.Release(w); err != nil {
			t.Fatal(err)
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
		return o
	}
	a, b := scenario(), scenario()
	if a != b {
		t.Fatalf("replay diverged:\n  run1 %+v\n  run2 %+v", a, b)
	}
	if a.out1 != 13 || a.out2 != 19 {
		t.Fatalf("outputs %d/%d, want 13/19", a.out1, a.out2)
	}
}

// TestPoolRecyclesAndRecovers covers the pool's resource hygiene: a
// two-thread template recycled many times must not consume fresh
// metadata pages per cycle (tid bases are reused), and a failed
// Acquire — a clone region snatched by another owner mid-flight —
// must unwind cleanly and leave the pool usable once the region
// returns.
func TestPoolRecyclesAndRecovers(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.Spec(l, enclaves.StatefulAdder(l), nil,
		regions[:1], []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		t.Fatal(err)
	}
	// A second (never-run) thread, so each worker needs two contiguous
	// tid pages — the case where leaking would exhaust metadata.
	spec.Threads = append(spec.Threads, os.ThreadSpec{EntryVA: l.CodeVA, StackVA: l.SP()})
	pool, err := os.NewPool(sys.OS, spec, regions[1:2], 1)
	if err != nil {
		t.Fatal(err)
	}

	// Many acquire/release cycles: with tid-base reuse this allocates
	// the two tid pages once; without it the metadata region (128 KiB /
	// 4 KiB = 32 pages here) would exhaust well before 40 cycles.
	for i := 0; i < 40; i++ {
		w, err := pool.Acquire(0)
		if err != nil {
			t.Fatalf("cycle %d: acquire: %v", i, err)
		}
		if len(w.TIDs) != 2 {
			t.Fatalf("cycle %d: worker has %d tids", i, len(w.TIDs))
		}
		if err := pool.Release(w); err != nil {
			t.Fatalf("cycle %d: release: %v", i, err)
		}
	}

	// Snatch the pool's clone region: the next Acquire must fail and
	// unwind (shell deleted, region recoverable, no metadata leak).
	thief, err := sys.OS.AllocMetaPage()
	if err != nil {
		t.Fatal(err)
	}
	cloneRegion := regions[1]
	if err := sys.OS.SM.CreateEnclave(thief, l.EvBase, l.EvMask); err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.SM.GrantRegion(cloneRegion, thief); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Acquire(0); err == nil {
		t.Fatal("acquire succeeded without its clone region")
	}
	// Return the region and the pool recovers.
	if err := sys.OS.SM.DeleteEnclave(thief); err != nil {
		t.Fatal(err)
	}
	sys.OS.ReleaseMetaPage(thief)
	if err := sys.OS.SM.CleanRegion(cloneRegion); err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.SM.GrantRegion(cloneRegion, api.DomainOS); err != nil {
		t.Fatal(err)
	}
	w, err := pool.Acquire(0)
	if err != nil {
		t.Fatalf("acquire after recovery: %v", err)
	}
	if err := pool.Release(w); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if refs := sys.Machine.Mem.TotalRefs(); refs != 0 {
		t.Fatalf("refs after teardown: %d", refs)
	}
}
