package sanctorum_test

import (
	"bytes"
	"crypto/rand"
	"testing"

	"sanctorum"
	"sanctorum/internal/attest"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

var allKinds = []struct {
	name string
	kind sanctorum.Kind
}{
	{"sanctum", sanctorum.Sanctum},
	{"keystone", sanctorum.Keystone},
	{"baseline", sanctorum.Baseline},
}

func TestQuickstartAdderAllPlatforms(t *testing.T) {
	for _, pk := range allKinds {
		t.Run(pk.name, func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: pk.kind})
			if err != nil {
				t.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			sharedPA, err := sys.SetupShared(l.SharedVA)
			if err != nil {
				t.Fatal(err)
			}
			regions := sys.OS.FreeRegions()
			spec, err := enclaves.Spec(l, enclaves.Adder(l), nil, regions[:1],
				[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
			if err != nil {
				t.Fatal(err)
			}
			built, err := sys.BuildEnclave(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.SharedWriteWord(sharedPA, enclaves.ShInput, 10); err != nil {
				t.Fatal(err)
			}
			res, err := sys.Enter(0, built.EID, built.TIDs[0], 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reason.String() != "return-to-os" {
				t.Fatalf("stop reason: %+v", res)
			}
			// The enclave's chosen exit status is delivered in a0.
			if got := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); got != 0x42 {
				t.Fatalf("exit status = %#x", got)
			}
			sum, err := sys.SharedReadWord(sharedPA, enclaves.ShOutput)
			if err != nil {
				t.Fatal(err)
			}
			if sum != 55 {
				t.Fatalf("sum = %d, want 55", sum)
			}
			// The core is clean: no enclave mode, registers scrubbed
			// except the sanctioned a0.
			c := sys.Machine.Cores[0]
			if c.EnclaveMode {
				t.Fatal("core left in enclave mode")
			}
			for r := 1; r < isa.NumRegs; r++ {
				if r != isa.RegA0 && c.CPU.Regs[r] != 0 {
					t.Fatalf("register x%d leaked %#x to the OS", r, c.CPU.Regs[r])
				}
			}
		})
	}
}

func TestMeasurementMatchesVerifierReplay(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.Spec(l, enclaves.Adder(l), []byte{1, 2, 3}, regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		t.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	if built.Measurement != os.ExpectedMeasurement(spec) {
		t.Fatal("monitor measurement does not match the verifier's transcript replay")
	}
	// The replay is placement-independent: a second build of the same
	// spec into different regions measures identically.
	spec2 := *spec
	spec2.Regions = regions[1:2]
	built2, err := sys.BuildEnclave(&spec2)
	if err != nil {
		t.Fatal(err)
	}
	if built2.Measurement != built.Measurement {
		t.Fatal("physical placement leaked into the measurement")
	}
}

func TestAEXAndResume(t *testing.T) {
	for _, pk := range allKinds[:2] { // sanctum + keystone
		t.Run(pk.name, func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: pk.kind})
			if err != nil {
				t.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			sharedPA, _ := sys.SetupShared(l.SharedVA)
			regions := sys.OS.FreeRegions()
			spec, err := enclaves.Spec(l, enclaves.Counter(l), nil, regions[:1],
				[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
			if err != nil {
				t.Fatal(err)
			}
			built, err := sys.BuildEnclave(spec)
			if err != nil {
				t.Fatal(err)
			}
			// First slice: de-schedule via the core timer.
			if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
				t.Fatalf("enter: %v", st)
			}
			core := sys.Machine.Cores[0]
			core.TimerCmp = core.CPU.Cycles + 3000
			res, err := sys.Machine.Run(0, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trap == nil || !res.Trap.Cause.IsInterrupt() {
				t.Fatalf("expected interrupt delegation, got %+v", res)
			}
			c1, _ := sys.SharedReadWord(sharedPA, enclaves.ShCounter)
			if c1 == 0 {
				t.Fatal("counter never ran")
			}
			// Registers must not leak enclave state to the OS on AEX.
			for r := 1; r < isa.NumRegs; r++ {
				if core.CPU.Regs[r] != 0 {
					t.Fatalf("x%d leaked %#x across AEX", r, core.CPU.Regs[r])
				}
			}
			// Second slice, short: a restarted counter could not reach
			// c1 again, so progress proves the AEX context resumed.
			if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
				t.Fatalf("re-enter: %v", st)
			}
			core.TimerCmp = core.CPU.Cycles + 1500
			if _, err := sys.Machine.Run(0, int(c1)); err != nil {
				t.Fatal(err)
			}
			c2, _ := sys.SharedReadWord(sharedPA, enclaves.ShCounter)
			if c2 <= c1 {
				t.Fatalf("counter did not resume: %d -> %d", c1, c2)
			}
		})
	}
}

func TestOSCannotTouchEnclaveOrMonitorMemory(t *testing.T) {
	for _, pk := range allKinds[:2] {
		t.Run(pk.name, func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: pk.kind})
			if err != nil {
				t.Fatal(err)
			}
			l := enclaves.DefaultLayout()
			sharedPA, _ := sys.SetupShared(l.SharedVA)
			regions := sys.OS.FreeRegions()
			encRegion := regions[0]
			spec, _ := enclaves.Spec(l, enclaves.Adder(l), []byte("secret!"), regions[:1],
				[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
			if _, err := sys.BuildEnclave(spec); err != nil {
				t.Fatal(err)
			}
			core := sys.Machine.Cores[1]
			encBase := sys.Machine.DRAM.Base(encRegion)
			if _, err := core.LoadAs(isa.PrivS, encBase, 8); err == nil {
				t.Fatal("OS read enclave memory")
			}
			if err := core.StoreAs(isa.PrivS, encBase, 8, 0xBAD); err == nil {
				t.Fatal("OS wrote enclave memory")
			}
			metaBase := sys.Machine.DRAM.Base(sys.MetaRegion)
			if _, err := core.LoadAs(isa.PrivS, metaBase, 8); err == nil {
				t.Fatal("OS read monitor metadata")
			}
			smBase := sys.Machine.DRAM.Base(sys.SMRegion)
			if _, err := core.LoadAs(isa.PrivS, smBase, 8); err == nil {
				t.Fatal("OS read monitor memory")
			}
			// DMA is confined to OS memory in every mode.
			if err := sys.Machine.DMATransfer(encBase, sharedPA, 64); err == nil {
				t.Fatal("DMA read enclave memory")
			}
			if err := sys.Machine.DMATransfer(sharedPA, encBase, 64); err == nil {
				t.Fatal("DMA wrote enclave memory")
			}
			if err := sys.Machine.DMATransfer(sharedPA, sharedPA+128, 64); err != nil {
				t.Fatalf("benign DMA denied: %v", err)
			}
		})
	}
}

func TestBaselinePlatformIsInsecure(t *testing.T) {
	// The control experiment: with no isolation primitive, the same
	// monitor logic cannot stop the OS — the paper's §IV-B requirements
	// are load-bearing.
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	spec, _ := enclaves.Spec(l, enclaves.Adder(l), []byte("secret!"), regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if _, err := sys.BuildEnclave(spec); err != nil {
		t.Fatal(err)
	}
	encBase := sys.Machine.DRAM.Base(regions[0])
	if _, err := sys.Machine.Cores[1].LoadAs(isa.PrivS, encBase, 8); err != nil {
		t.Fatalf("baseline unexpectedly blocked the OS: %v", err)
	}
}

func TestLocalAttestation(t *testing.T) {
	// Fig 6 end to end: E2 (receiver) attests E1 (sender) via the
	// monitor's measurement-stamped mailboxes.
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	lSend := enclaves.DefaultLayout()
	lRecv := enclaves.DefaultLayout()
	lRecv.SharedVA = 0x50002000
	regions := sys.OS.FreeRegions()

	sharedSendPA, _ := sys.SetupShared(lSend.SharedVA)
	sharedRecvPA, _ := sys.SetupShared(lRecv.SharedVA)

	msg := make([]byte, api.MailboxSize)
	copy(msg, "greetings from E1")
	sendSpec, err := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(msg), regions[:1],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})
	if err != nil {
		t.Fatal(err)
	}
	expectedSender := os.ExpectedMeasurement(sendSpec)

	recvSpec, err := enclaves.Spec(lRecv, enclaves.MailReceiver(lRecv),
		enclaves.ReceiverDataInit(expectedSender), regions[1:2],
		[]os.SharedMapping{{VA: lRecv.SharedVA, PA: sharedRecvPA}})
	if err != nil {
		t.Fatal(err)
	}

	sender, err := sys.BuildEnclave(sendSpec)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := sys.BuildEnclave(recvSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sender.Measurement != expectedSender {
		t.Fatal("sender measurement mismatch")
	}

	// Step 1: receiver arms its mailbox for the sender.
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShPeerEID, sender.EID)
	if _, err := sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("accept_mail failed: %v", api.Error(st))
	}
	// Step 2: sender mails its message.
	sys.SharedWriteWord(sharedSendPA, enclaves.ShPeerEID, receiver.EID)
	if _, err := sys.Enter(0, sender.EID, sender.TIDs[0], 100_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("send_mail failed: %v", api.Error(st))
	}
	// Steps 3-4: receiver drains and validates the measurement.
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 1)
	if _, err := sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000); err != nil {
		t.Fatal(err)
	}
	verdict, _ := sys.SharedReadWord(sharedRecvPA, enclaves.ShOutput)
	if verdict != 1 {
		t.Fatalf("verdict = %d, want authentic (1)", verdict)
	}
}

func TestLocalAttestationDetectsImpostor(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	lSend := enclaves.DefaultLayout()
	lRecv := enclaves.DefaultLayout()
	lRecv.SharedVA = 0x50002000
	regions := sys.OS.FreeRegions()
	sharedSendPA, _ := sys.SetupShared(lSend.SharedVA)
	sharedRecvPA, _ := sys.SetupShared(lRecv.SharedVA)

	genuineMsg := make([]byte, api.MailboxSize)
	copy(genuineMsg, "genuine")
	genuineSpec, _ := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(genuineMsg), regions[:1],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})
	expected := os.ExpectedMeasurement(genuineSpec)

	// The impostor runs the same code but different (attacker-chosen)
	// initial data: its measurement necessarily differs.
	impostorMsg := make([]byte, api.MailboxSize)
	copy(impostorMsg, "impostor")
	impostorSpec, _ := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(impostorMsg), regions[:1],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})

	recvSpec, _ := enclaves.Spec(lRecv, enclaves.MailReceiver(lRecv),
		enclaves.ReceiverDataInit(expected), regions[1:2],
		[]os.SharedMapping{{VA: lRecv.SharedVA, PA: sharedRecvPA}})

	impostor, err := sys.BuildEnclave(impostorSpec)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := sys.BuildEnclave(recvSpec)
	if err != nil {
		t.Fatal(err)
	}

	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShPeerEID, impostor.EID)
	sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000)
	sys.SharedWriteWord(sharedSendPA, enclaves.ShPeerEID, receiver.EID)
	sys.Enter(0, impostor.EID, impostor.TIDs[0], 100_000)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 1)
	sys.Enter(0, receiver.EID, receiver.TIDs[0], 100_000)
	verdict, _ := sys.SharedReadWord(sharedRecvPA, enclaves.ShOutput)
	if verdict != 2 {
		t.Fatalf("verdict = %d, want mismatch (2): the monitor stamped the impostor's true measurement", verdict)
	}
}

func TestRemoteAttestation(t *testing.T) {
	// Fig 7 end to end, with a real remote verifier.
	lES := enclaves.DefaultLayout()
	lE1 := enclaves.DefaultLayout()
	lE1.SharedVA = 0x50002000

	// The signing enclave's measurement is hard-coded into the monitor
	// at boot; compute it from the spec template (placement-free).
	esTemplate, err := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, nil,
		[]os.SharedMapping{{VA: lES.SharedVA}})
	if err != nil {
		t.Fatal(err)
	}
	signingMeas := os.ExpectedMeasurement(esTemplate)

	sys, err := sanctorum.NewSystem(sanctorum.Options{
		Kind:               sanctorum.Sanctum,
		SigningMeasurement: signingMeas,
	})
	if err != nil {
		t.Fatal(err)
	}
	regions := sys.OS.FreeRegions()
	sharedESPA, _ := sys.SetupShared(lES.SharedVA)
	sharedE1PA, _ := sys.SetupShared(lE1.SharedVA)

	esSpec, _ := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, regions[:1],
		[]os.SharedMapping{{VA: lES.SharedVA, PA: sharedESPA}})
	e1Spec, _ := enclaves.Spec(lE1, enclaves.AttestedClient(lE1),
		enclaves.ClientDataInit(), regions[1:2],
		[]os.SharedMapping{{VA: lE1.SharedVA, PA: sharedE1PA}})
	expectedE1 := os.ExpectedMeasurement(e1Spec)

	es, err := sys.BuildEnclave(esSpec)
	if err != nil {
		t.Fatal(err)
	}
	if es.Measurement != signingMeas {
		t.Fatal("signing enclave measurement drifted from the boot-time constant")
	}
	e1, err := sys.BuildEnclave(e1Spec)
	if err != nil {
		t.Fatal(err)
	}

	// Remote verifier state: key agreement + nonce (Fig 7 steps 1-2).
	verifierKA, err := attest.NewKeyAgreement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var nonce [attest.NonceSize]byte
	rand.Read(nonce[:])

	// OS transports public values and schedules everything.
	sys.SharedWriteWord(sharedESPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedESPA, enclaves.ShPeerEID, e1.EID)
	if _, err := sys.Enter(0, es.EID, es.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("ES accept_mail: %v", api.Error(st))
	}

	sys.SharedWriteWord(sharedE1PA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedE1PA, enclaves.ShPeerEID, es.EID)
	sys.SharedWrite(sharedE1PA+enclaves.ShNonce, nonce[:])
	if _, err := sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("E1 phase 0: %v", api.Error(st))
	}

	sys.SharedWriteWord(sharedESPA, enclaves.ShInput, 1)
	if _, err := sys.Enter(0, es.EID, es.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("ES phase 1: %v", api.Error(st))
	}

	sys.SharedWriteWord(sharedE1PA, enclaves.ShInput, 1)
	sys.SharedWrite(sharedE1PA+enclaves.ShPeerKA, verifierKA.Share())
	if _, err := sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000); err != nil {
		t.Fatal(err)
	}
	if st := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); st != 0 {
		t.Fatalf("E1 phase 1: %v", api.Error(st))
	}

	// The verifier receives the evidence over the untrusted channel
	// (Fig 7 step 8) and verifies it (step 9).
	share, _ := sys.SharedRead(sharedE1PA+enclaves.ShShare, 32)
	sig, _ := sys.SharedRead(sharedE1PA+enclaves.ShSig, 64)
	chain, st := sys.Monitor.GetField(api.FieldCertChain)
	if st != api.OK {
		t.Fatalf("get_field: %v", st)
	}
	ev := &attest.Evidence{
		EnclaveMeasurement: expectedE1,
		Nonce:              nonce,
		KAShare:            share,
		Signature:          sig,
		CertChain:          chain,
	}
	monitorMeas := sys.Monitor.Identity().Measurement
	pol := attest.Policy{
		TrustedRoot:     sys.TrustedRoot(),
		ExpectedEnclave: expectedE1,
		AcceptMonitor:   func(m []byte) bool { return bytes.Equal(m, monitorMeas[:]) },
	}
	if err := attest.Verify(ev, nonce, pol); err != nil {
		t.Fatalf("remote attestation rejected: %v", err)
	}

	// Step 10: the session key authenticates subsequent traffic.
	sessionKey, err := verifierKA.SessionKey(share)
	if err != nil {
		t.Fatal(err)
	}
	macBytes, _ := sys.SharedRead(sharedE1PA+enclaves.ShMACOut, 32)
	var tag [32]byte
	copy(tag[:], macBytes)
	if !attest.Open(sessionKey, enclaves.SessionPlaintext, tag) {
		t.Fatal("enclave did not derive the same session key as the verifier")
	}

	// Negative: a replayed nonce fails.
	var otherNonce [attest.NonceSize]byte
	rand.Read(otherNonce[:])
	if err := attest.Verify(ev, otherNonce, pol); err == nil {
		t.Fatal("stale evidence accepted under a fresh nonce")
	}
}

func TestEnclavePageFaultDeliveredAndAEXFallback(t *testing.T) {
	// An enclave touching an unmapped VA takes an AEX (no handler
	// registered) and the OS sees the fault — without gaining access to
	// enclave state.
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()

	// A program that dereferences an unmapped private address.
	prog := enclaves.FaultingProgram(l)
	spec, err := enclaves.Spec(l, prog, nil, regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		t.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Enter(0, built.EID, built.TIDs[0], 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || !res.Trap.Cause.IsPageFault() {
		t.Fatalf("expected page fault delegation, got %+v", res)
	}
	core := sys.Machine.Cores[0]
	if core.EnclaveMode {
		t.Fatal("core left in enclave mode after fault AEX")
	}
}
